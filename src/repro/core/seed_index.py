"""The seed index: an R-Tree whose leaves hold FLAT's metadata records.

Two roles (Sec. V-B.1/V-B.2):

* **Seeding** — find *one* metadata record whose object page contains an
  element intersecting the query, following a single root-to-leaf path
  (with backtracking only for nearly-empty queries).
* **Record storage** — metadata records are packed into the seed tree's
  leaf pages so that following a neighbor pointer costs at most one
  (usually buffered) metadata-page read.  Records are grouped onto
  leaves by STR tiling of their page MBRs, so each leaf covers a compact
  region and a crawl touches few distinct metadata pages.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.intersect import boxes_intersect_box
from repro.geometry.mbr import mbr_union_many
from repro.storage.pagestore import PageStore
from repro.storage.serial import (
    decode_element_page,
    decode_metadata_page,
    decode_node_page,
    encode_metadata_page,
)
from repro.storage.stats import CATEGORY_METADATA, CATEGORY_SEED_INTERNAL
from repro.core.metadata import (
    MetadataRecord,
    group_records_spatially,
    pack_records_into_pages,
)
from repro.rtree.rtree import pack_upper_levels
from repro.rtree.str_bulk import str_groups


class SeedIndex:
    """Seed tree + metadata records for one FLAT index."""

    def __init__(
        self,
        store: PageStore,
        root_id: int,
        height: int,
        leaf_page_ids: list,
        record_page: np.ndarray,
        record_slot: np.ndarray,
        leaf_record_ids: dict,
    ):
        self.store = store
        self.root_id = root_id
        #: Internal levels above the metadata leaf pages.
        self.height = height
        self.leaf_page_ids = leaf_page_ids
        #: record id -> metadata leaf page id (what an on-disk neighbor
        #: pointer would encode directly).
        self.record_page = record_page
        #: record id -> slot within its leaf page.
        self.record_slot = record_slot
        #: leaf page id -> record ids stored on it, in slot order.
        self.leaf_record_ids = leaf_record_ids

    @property
    def record_count(self) -> int:
        return len(self.record_page)

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, store: PageStore, records: list, fanout: int | None = None,
              spatial_grouping: bool = True) -> "SeedIndex":
        """Pack *records* into leaves (STR-grouped) and build the tree.

        ``fanout`` caps the internal-node entry count; ``None`` uses the
        full 4 K page fanout.  Experiments lower it in lockstep with the
        R-Tree baselines for a fair depth-matched comparison.

        ``spatial_grouping=False`` packs records in raw partition order
        instead of STR tiles — kept for the metadata-locality ablation
        benchmark (it produces slab-shaped metadata pages and many more
        metadata reads per crawl).
        """
        if not records:
            raise ValueError("cannot build a seed index without records")
        page_mbrs = np.stack([r.page_mbr for r in records])
        sizes = [r.serialized_bytes() for r in records]
        if spatial_grouping:
            groups = group_records_spatially(page_mbrs, sizes)
        else:
            groups = [
                np.arange(start, end)
                for start, end in pack_records_into_pages(sizes)
            ]

        leaf_page_ids = []
        leaf_mbrs = np.empty((len(groups), 6), dtype=np.float64)
        record_page = np.empty(len(records), dtype=np.int64)
        record_slot = np.empty(len(records), dtype=np.int64)
        leaf_record_ids = {}
        for gi, group in enumerate(groups):
            chunk = [records[i] for i in group]
            payload = encode_metadata_page(
                [
                    (r.page_mbr, r.partition_mbr, r.object_page_id, r.neighbor_ids)
                    for r in chunk
                ]
            )
            page_id = store.allocate(payload, CATEGORY_METADATA)
            leaf_page_ids.append(page_id)
            ids = np.asarray(group, dtype=np.int64)
            leaf_record_ids[page_id] = ids
            record_page[ids] = page_id
            record_slot[ids] = np.arange(len(ids))
            # Leaf entry key: union of the record page MBRs on the leaf
            # (the paper indexes each record with its page MBR as key).
            leaf_mbrs[gi] = mbr_union_many(page_mbrs[ids])

        from repro.storage.constants import NODE_FANOUT

        root_id, height = pack_upper_levels(
            store,
            leaf_page_ids,
            leaf_mbrs,
            str_groups,
            CATEGORY_SEED_INTERNAL,
            NODE_FANOUT if fanout is None else fanout,
        )
        return cls(
            store,
            root_id,
            height,
            leaf_page_ids,
            record_page,
            record_slot,
            leaf_record_ids,
        )

    # -- record access ------------------------------------------------------

    def fetch_record(self, record_id: int) -> MetadataRecord:
        """Read a metadata record (costs its leaf page on buffer miss)."""
        if not 0 <= record_id < self.record_count:
            raise ValueError(f"record id {record_id} out of range")
        leaf_page_id = int(self.record_page[record_id])
        raw = decode_metadata_page(self.store.read(leaf_page_id))
        page_mbr, partition_mbr, object_page_id, neighbor_ids = raw[
            int(self.record_slot[record_id])
        ]
        return MetadataRecord(
            record_id=record_id,
            page_mbr=page_mbr,
            partition_mbr=partition_mbr,
            object_page_id=int(object_page_id),
            neighbor_ids=tuple(neighbor_ids),
        )

    def iter_records(self):
        """Yield every record without I/O accounting (analysis/tests)."""
        for leaf_page_id in self.leaf_page_ids:
            raw = decode_metadata_page(self.store.read_silent(leaf_page_id))
            ids = self.leaf_record_ids[leaf_page_id]
            for slot, (page_mbr, partition_mbr, object_page_id, nbrs) in enumerate(raw):
                yield MetadataRecord(
                    record_id=int(ids[slot]),
                    page_mbr=page_mbr,
                    partition_mbr=partition_mbr,
                    object_page_id=int(object_page_id),
                    neighbor_ids=tuple(nbrs),
                )

    # -- seeding -------------------------------------------------------------

    def seed_query(self, query: np.ndarray):
        """Find one record whose object page holds an element in *query*.

        Depth-first descent reading only intersecting paths; at each
        metadata leaf, candidate records (page MBR intersecting the
        query) have their object page probed until one contains a truly
        intersecting element (Sec. V-B.1).  Returns ``(record,
        matching_element_slots)`` or ``None`` when the query is empty.
        """
        query = np.asarray(query, dtype=np.float64)
        stack = [(self.root_id, self.height)]
        while stack:
            page_id, level = stack.pop()
            if level == 0:
                raw = decode_metadata_page(self.store.read(page_id))
                ids = self.leaf_record_ids[page_id]
                for slot, (page_mbr, partition_mbr, object_page_id, nbrs) in enumerate(
                    raw
                ):
                    if not boxes_intersect_box(page_mbr[None, :], query)[0]:
                        continue
                    elements = decode_element_page(
                        self.store.read(int(object_page_id))
                    )
                    mask = boxes_intersect_box(elements, query)
                    if mask.any():
                        record = MetadataRecord(
                            record_id=int(ids[slot]),
                            page_mbr=page_mbr,
                            partition_mbr=partition_mbr,
                            object_page_id=int(object_page_id),
                            neighbor_ids=tuple(nbrs),
                        )
                        return record, np.flatnonzero(mask)
                continue
            child_ids, child_mbrs, _leaf = decode_node_page(self.store.read(page_id))
            mask = boxes_intersect_box(child_mbrs, query)
            for cid in child_ids[mask][::-1]:
                stack.append((int(cid), level - 1))
        return None

    # -- introspection ---------------------------------------------------------

    def internal_node_count(self) -> int:
        """Number of internal (non-leaf) seed tree pages."""
        count = 0
        stack = [(self.root_id, self.height)]
        while stack:
            page_id, level = stack.pop()
            if level == 0:
                continue
            count += 1
            child_ids, _mbrs, _leaf = decode_node_page(self.store.read_silent(page_id))
            for cid in child_ids:
                stack.append((int(cid), level - 1))
        return count
