"""The seed index: an R-Tree whose leaves hold FLAT's metadata records.

Two roles (Sec. V-B.1/V-B.2):

* **Seeding** — find *one* metadata record whose object page contains an
  element intersecting the query, following a single root-to-leaf path
  (with backtracking only for nearly-empty queries).
* **Record storage** — metadata records are packed into the seed tree's
  leaf pages so that following a neighbor pointer costs at most one
  (usually buffered) metadata-page read.  Records are grouped onto
  leaves by STR tiling of their page MBRs, so each leaf covers a compact
  region and a crawl touches few distinct metadata pages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.intersect import boxes_intersect_box
from repro.geometry.mbr import mbr_union_many
from repro.storage.pagestore import PageStore
from repro.storage.serial import (
    decode_metadata_page,
    decode_node_page,
    encode_metadata_page,
)
from repro.storage.stats import CATEGORY_METADATA, CATEGORY_SEED_INTERNAL
from repro.core.metadata import (
    MetadataRecord,
    group_records_spatially,
    pack_records_into_pages,
)
from repro.rtree.rtree import pack_upper_levels
from repro.rtree.str_bulk import str_groups


@dataclass(frozen=True)
class RecordBatch:
    """A struct-of-arrays view of many metadata records at once.

    Produced by :meth:`SeedIndex.fetch_records_batch`; the crawl engine
    consumes whole BFS frontiers in this form so intersection tests run
    as single vectorized calls instead of per-record Python loops.
    Neighbor pointers are stored in CSR form: the neighbors of row ``i``
    are ``neighbor_ids[neighbor_offsets[i]:neighbor_offsets[i + 1]]``.
    """

    record_ids: np.ndarray        #: (N,) record ids, in request order.
    page_mbrs: np.ndarray         #: (N, 6) page MBRs.
    partition_mbrs: np.ndarray    #: (N, 6) partition MBRs.
    object_page_ids: np.ndarray   #: (N,) object page ids.
    neighbor_offsets: np.ndarray  #: (N + 1,) CSR row offsets.
    neighbor_ids: np.ndarray      #: (M,) concatenated neighbor record ids.

    def __len__(self) -> int:
        return len(self.record_ids)

    def neighbors_of(self, mask: np.ndarray) -> np.ndarray:
        """Concatenated neighbor ids of the rows selected by *mask*."""
        selected = np.flatnonzero(mask)
        if selected.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.neighbor_offsets[selected]
        lengths = self.neighbor_offsets[selected + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Vectorized CSR row gather: offset each row's arange to its start.
        row_ends = np.cumsum(lengths)
        shift = np.repeat(starts - (row_ends - lengths), lengths)
        return self.neighbor_ids[np.arange(total) + shift]


class SeedIndex:
    """Seed tree + metadata records for one FLAT index."""

    def __init__(
        self,
        store: PageStore,
        root_id: int,
        height: int,
        leaf_page_ids: list,
        record_page: np.ndarray,
        record_slot: np.ndarray,
        leaf_record_ids: dict,
        fanout: int | None = None,
    ):
        self.store = store
        self.root_id = root_id
        #: Internal levels above the metadata leaf pages.
        self.height = height
        #: Internal fanout cap the tree was built with (``None`` = full
        #: page fanout); the write path rebuilds upper levels with it.
        self.fanout = fanout
        self.leaf_page_ids = leaf_page_ids
        #: record id -> metadata leaf page id (what an on-disk neighbor
        #: pointer would encode directly).
        self.record_page = record_page
        #: record id -> slot within its leaf page.
        self.record_slot = record_slot
        #: leaf page id -> record ids stored on it, in slot order.
        self.leaf_record_ids = leaf_record_ids
        #: Object page ids probed (read + decoded) by the most recent
        #: :meth:`seed_query` call, in probe order.  The crawl engines
        #: consult this so a page the seed phase already read is not
        #: counted again in :class:`~repro.core.flat_index.CrawlStats`.
        self.last_probe_object_page_ids: list = []

    @property
    def record_count(self) -> int:
        return len(self.record_page)

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, store: PageStore, records: list, fanout: int | None = None,
              spatial_grouping: bool = True) -> "SeedIndex":
        """Pack *records* into leaves (STR-grouped) and build the tree.

        ``fanout`` caps the internal-node entry count; ``None`` uses the
        full 4 K page fanout.  Experiments lower it in lockstep with the
        R-Tree baselines for a fair depth-matched comparison.

        ``spatial_grouping=False`` packs records in raw partition order
        instead of STR tiles — kept for the metadata-locality ablation
        benchmark (it produces slab-shaped metadata pages and many more
        metadata reads per crawl).
        """
        if not records:
            raise ValueError("cannot build a seed index without records")
        page_mbrs = np.stack([r.page_mbr for r in records])
        sizes = [r.serialized_bytes() for r in records]
        if spatial_grouping:
            groups = group_records_spatially(page_mbrs, sizes)
        else:
            groups = [
                np.arange(start, end)
                for start, end in pack_records_into_pages(sizes)
            ]

        leaf_page_ids = []
        leaf_mbrs = np.empty((len(groups), 6), dtype=np.float64)
        record_page = np.empty(len(records), dtype=np.int64)
        record_slot = np.empty(len(records), dtype=np.int64)
        leaf_record_ids = {}
        for gi, group in enumerate(groups):
            chunk = [records[i] for i in group]
            payload = encode_metadata_page(
                [
                    (r.page_mbr, r.partition_mbr, r.object_page_id, r.neighbor_ids)
                    for r in chunk
                ]
            )
            page_id = store.allocate(payload, CATEGORY_METADATA)
            leaf_page_ids.append(page_id)
            ids = np.asarray(group, dtype=np.int64)
            leaf_record_ids[page_id] = ids
            record_page[ids] = page_id
            record_slot[ids] = np.arange(len(ids))
            # Leaf entry key: union of the record page MBRs on the leaf
            # (the paper indexes each record with its page MBR as key).
            leaf_mbrs[gi] = mbr_union_many(page_mbrs[ids])

        from repro.storage.constants import NODE_FANOUT

        root_id, height = pack_upper_levels(
            store,
            leaf_page_ids,
            leaf_mbrs,
            str_groups,
            CATEGORY_SEED_INTERNAL,
            NODE_FANOUT if fanout is None else fanout,
        )
        return cls(
            store,
            root_id,
            height,
            leaf_page_ids,
            record_page,
            record_slot,
            leaf_record_ids,
            fanout=fanout,
        )

    def with_store(self, store: PageStore) -> "SeedIndex":
        """A shallow clone reading its pages from *store*.

        The tree layout and record directory are shared read-only (all
        index structures are bulkloaded and immutable); only the store —
        and with it the caches and I/O accounting — is swapped.  Used to
        give each serving worker a stat-isolated view of one index.
        """
        return SeedIndex(
            store,
            self.root_id,
            self.height,
            self.leaf_page_ids,
            self.record_page,
            self.record_slot,
            self.leaf_record_ids,
            fanout=self.fanout,
        )

    # -- record access ------------------------------------------------------

    def fetch_record(self, record_id: int) -> MetadataRecord:
        """Read one metadata record (costs its leaf page on buffer miss).

        This is the scalar reference accessor: it re-decodes the whole
        leaf page on every call, exactly as the original per-record
        crawl did.  Hot paths use :meth:`fetch_records_batch`, which
        decodes each touched leaf at most once per query.
        """
        if not 0 <= record_id < self.record_count:
            raise ValueError(f"record id {record_id} out of range")
        leaf_page_id = int(self.record_page[record_id])
        raw = self.store.read_metadata(leaf_page_id, cached=False)
        page_mbr, partition_mbr, object_page_id, neighbor_ids = raw[
            int(self.record_slot[record_id])
        ]
        return MetadataRecord(
            record_id=record_id,
            page_mbr=page_mbr,
            partition_mbr=partition_mbr,
            object_page_id=int(object_page_id),
            neighbor_ids=tuple(neighbor_ids),
        )

    def fetch_records_batch(self, record_ids) -> RecordBatch:
        """Read many metadata records as one struct-of-arrays batch.

        Ids are grouped by metadata leaf page so every touched leaf is
        read once and — via the store's decoded-page cache — decoded at
        most once per query, no matter how many of its records the
        crawl's frontiers request.
        """
        ids = np.atleast_1d(np.asarray(record_ids, dtype=np.int64))
        n = len(ids)
        if n and not (0 <= ids.min() and ids.max() < self.record_count):
            raise ValueError("record id out of range in batch")
        page_mbrs = np.empty((n, 6), dtype=np.float64)
        partition_mbrs = np.empty((n, 6), dtype=np.float64)
        object_page_ids = np.empty(n, dtype=np.int64)
        neighbor_lists = [()] * n

        leaf_ids = self.record_page[ids]
        order = np.argsort(leaf_ids, kind="stable")
        boundaries = np.flatnonzero(np.diff(leaf_ids[order])) + 1
        for group in np.split(order, boundaries) if n else []:
            raw = self.store.read_metadata(int(leaf_ids[group[0]]))
            for pos in group:
                slot = int(self.record_slot[ids[pos]])
                page_mbr, partition_mbr, object_page_id, nbrs = raw[slot]
                page_mbrs[pos] = page_mbr
                partition_mbrs[pos] = partition_mbr
                object_page_ids[pos] = object_page_id
                neighbor_lists[pos] = nbrs

        counts = np.fromiter(
            (len(nbrs) for nbrs in neighbor_lists), dtype=np.int64, count=n
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        neighbor_ids = np.fromiter(
            (nid for nbrs in neighbor_lists for nid in nbrs),
            dtype=np.int64,
            count=int(offsets[-1]),
        )
        return RecordBatch(
            record_ids=ids,
            page_mbrs=page_mbrs,
            partition_mbrs=partition_mbrs,
            object_page_ids=object_page_ids,
            neighbor_offsets=offsets,
            neighbor_ids=neighbor_ids,
        )

    def iter_records(self):
        """Yield every record without I/O accounting (analysis/tests)."""
        for leaf_page_id in self.leaf_page_ids:
            raw = decode_metadata_page(self.store.read_silent(leaf_page_id))
            ids = self.leaf_record_ids[leaf_page_id]
            for slot, (page_mbr, partition_mbr, object_page_id, nbrs) in enumerate(raw):
                yield MetadataRecord(
                    record_id=int(ids[slot]),
                    page_mbr=page_mbr,
                    partition_mbr=partition_mbr,
                    object_page_id=int(object_page_id),
                    neighbor_ids=tuple(nbrs),
                )

    # -- seeding -------------------------------------------------------------

    def seed_query(self, query: np.ndarray):
        """Find one record whose object page holds an element in *query*.

        Depth-first descent reading only intersecting paths; at each
        metadata leaf, candidate records (page MBR intersecting the
        query) have their object page probed until one contains a truly
        intersecting element (Sec. V-B.1).  Returns ``(record,
        matching_element_slots)`` or ``None`` when the query is empty.

        Decoded leaves and probed object pages go through the store's
        decoded-page cache, so the crawl that follows never re-decodes a
        page the seed phase already parsed.
        """
        query = np.asarray(query, dtype=np.float64)
        probed: list = []
        self.last_probe_object_page_ids = probed
        stack = [(self.root_id, self.height)]
        while stack:
            page_id, level = stack.pop()
            if level == 0:
                raw = self.store.read_metadata(page_id)
                ids = self.leaf_record_ids[page_id]
                for slot, (page_mbr, partition_mbr, object_page_id, nbrs) in enumerate(
                    raw
                ):
                    if not boxes_intersect_box(page_mbr[None, :], query)[0]:
                        continue
                    probed.append(int(object_page_id))
                    elements = self.store.read_elements(int(object_page_id))
                    mask = boxes_intersect_box(elements, query)
                    if mask.any():
                        record = MetadataRecord(
                            record_id=int(ids[slot]),
                            page_mbr=page_mbr,
                            partition_mbr=partition_mbr,
                            object_page_id=int(object_page_id),
                            neighbor_ids=tuple(nbrs),
                        )
                        return record, np.flatnonzero(mask)
                continue
            child_ids, child_mbrs, _leaf = decode_node_page(self.store.read(page_id))
            mask = boxes_intersect_box(child_mbrs, query)
            for cid in child_ids[mask][::-1]:
                stack.append((int(cid), level - 1))
        return None

    # -- introspection ---------------------------------------------------------

    def internal_node_count(self) -> int:
        """Number of internal (non-leaf) seed tree pages."""
        count = 0
        stack = [(self.root_id, self.height)]
        while stack:
            page_id, level = stack.pop()
            if level == 0:
                continue
            count += 1
            child_ids, _mbrs, _leaf = decode_node_page(self.store.read_silent(page_id))
            for cid in child_ids:
                stack.append((int(cid), level - 1))
        return count
