"""FLAT — the paper's primary contribution.

Public entry point: :class:`~repro.core.flat_index.FLATIndex`.

>>> from repro.core import FLATIndex
>>> from repro.storage import PageStore
>>> index = FLATIndex.build(PageStore(), element_mbrs)
>>> hits = index.range_query(query_box)
"""

from repro.core.delta import DeltaIndex
from repro.core.flat_index import BuildReport, CrawlStats, FLATIndex
from repro.core.metadata import MetadataRecord, pack_records_into_pages
from repro.core.multicrawl import crawl_multi
from repro.core.neighbors import compute_neighbors, neighbor_counts
from repro.core.partition import Partition, compute_partitions, coverage_gaps_exist
from repro.core.seed_index import RecordBatch, SeedIndex
from repro.core.sharded import Shard, ShardedFLATIndex
from repro.core.snapshot import (
    publish_fork_generation,
    restore_index,
    ship_index_generation,
    snapshot_generation,
    snapshot_index,
)

__all__ = [
    "BuildReport",
    "CrawlStats",
    "DeltaIndex",
    "FLATIndex",
    "MetadataRecord",
    "Partition",
    "RecordBatch",
    "SeedIndex",
    "Shard",
    "ShardedFLATIndex",
    "compute_neighbors",
    "compute_partitions",
    "coverage_gaps_exist",
    "crawl_multi",
    "neighbor_counts",
    "pack_records_into_pages",
    "publish_fork_generation",
    "restore_index",
    "ship_index_generation",
    "snapshot_generation",
    "snapshot_index",
]
