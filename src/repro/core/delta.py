"""The LSM-style in-memory delta layer over a committed FLAT generation.

Restructuring every update batch into pages is what capped ingest at a
few thousand elements per second: each commit paid page rewrites, link
repair and a seed-leaf flush however small the batch.  The delta layer
buys back that cost the way an LSM tree does — small commits land in a
RAM *memtable* (inserted elements) plus a *tombstone set* (deleted
committed ids), and only at a generation boundary is the accumulated
delta merged into the page-backed index in one bulk
:meth:`~repro.core.flat_index.FLATIndex.apply_batch`.

Queries union the delta in: the crawl answers from the committed pages
exactly as before, then :meth:`DeltaIndex.overlay` drops tombstoned ids
and merges in the memtable's matching elements.  The delta is pure RAM
and never touches the page store, so the paper's page-read accounting
— the byte-exact pins every crawl test rests on — is untouched by an
attached delta.

A ``DeltaIndex`` is treated as *immutable once served*: the serving
layer copies it (:meth:`copy`), absorbs a batch into the copy, and
atomically publishes the copy as the next service version — the same
copy-on-write discipline the page generations use, so in-flight queries
keep reading the delta they captured.  Ids are assigned from the base
index's watermark (monotonic, never reused), which keeps any
interleaving of delta-absorbed and merged updates byte-identical to a
scratch rebuild of the surviving element set.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.intersect import boxes_intersect_box
from repro.geometry.mbr import (
    mbr_distance_to_point,
    mbr_union_many,
    validate_mbrs,
)


class DeltaIndex:
    """Memtable of inserted elements plus tombstones over a base index.

    ``next_id`` seeds the element-id watermark — pass the base index's
    ``next_element_id`` so delta-assigned ids continue the committed
    sequence exactly as a direct ``apply_batch`` would have.
    """

    def __init__(self, next_id: int = 0):
        #: Element-id watermark; inserts assign from here, monotonically.
        self.next_id = int(next_id)
        #: Ids the watermark started at (merge bookkeeping/diagnostics).
        self.base_next_id = int(next_id)
        #: Memtable rows, in arrival order.  Rows of elements deleted
        #: again before any merge stay allocated but drop out of
        #: ``_live`` — their ids are consumed, never reused.
        self._insert_ids = np.empty(0, dtype=np.int64)
        self._insert_mbrs = np.empty((0, 6), dtype=np.float64)
        self._live = np.empty(0, dtype=bool)
        #: id -> memtable row, live rows only.
        self._row_of: dict = {}
        #: Committed (base) element ids deleted while buffered here.
        self._tombstones: set = set()

    # -- mutation --------------------------------------------------------

    def insert(self, element_mbrs: np.ndarray) -> np.ndarray:
        """Buffer elements in the memtable; returns their assigned ids."""
        element_mbrs = validate_mbrs(np.atleast_2d(element_mbrs))
        new_ids = np.arange(
            self.next_id, self.next_id + len(element_mbrs), dtype=np.int64
        )
        if not len(element_mbrs):
            return new_ids
        first_row = len(self._insert_ids)
        self._insert_ids = np.concatenate([self._insert_ids, new_ids])
        self._insert_mbrs = np.vstack([self._insert_mbrs, element_mbrs])
        self._live = np.concatenate(
            [self._live, np.ones(len(new_ids), dtype=bool)]
        )
        for offset, eid in enumerate(new_ids):
            self._row_of[int(eid)] = first_row + offset
        self.next_id += len(new_ids)
        return new_ids

    def delete(self, element_ids, base_contains) -> None:
        """Record deletions: memtable rows die, base ids get tombstones.

        ``base_contains(ids)`` must return a boolean mask of which ids
        are live elements of the committed base index.  Ids found
        neither in the memtable nor in the base raise ``KeyError``
        naming every missing id; duplicates in the batch raise
        ``ValueError``.  Validation is atomic — a bad batch leaves the
        delta untouched.
        """
        element_ids = np.atleast_1d(np.asarray(element_ids, dtype=np.int64))
        if not len(element_ids):
            return
        seen: set = set()
        memtable_kills: list = []
        base_kills: list = []
        unknown: list = []
        in_base = np.asarray(base_contains(element_ids), dtype=bool)
        for eid, base_hit in zip(element_ids, in_base):
            eid = int(eid)
            if eid in seen:
                raise ValueError(f"duplicate element id {eid} in delete batch")
            seen.add(eid)
            if eid in self._row_of:
                memtable_kills.append(eid)
            elif bool(base_hit) and eid not in self._tombstones:
                base_kills.append(eid)
            else:
                unknown.append(eid)
        if unknown:
            raise KeyError(f"unknown element ids: {sorted(unknown)}")
        for eid in memtable_kills:
            self._live[self._row_of.pop(eid)] = False
        self._tombstones.update(base_kills)

    # -- introspection ---------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._row_of and not self._tombstones

    @property
    def pending_inserts(self) -> int:
        """Live memtable elements awaiting a merge."""
        return len(self._row_of)

    @property
    def tombstone_count(self) -> int:
        return len(self._tombstones)

    @property
    def size(self) -> int:
        """Buffered work: live memtable rows plus tombstones.

        The serving layer's merge trigger — a generation boundary is
        declared once this crosses the configured threshold.
        """
        return len(self._row_of) + len(self._tombstones)

    @property
    def element_delta(self) -> int:
        """Net live-element change the delta represents."""
        return len(self._row_of) - len(self._tombstones)

    def __repr__(self) -> str:
        return (
            f"DeltaIndex(pending_inserts={self.pending_inserts}, "
            f"tombstones={self.tombstone_count}, next_id={self.next_id})"
        )

    # -- querying --------------------------------------------------------

    def _live_rows(self) -> np.ndarray:
        return np.flatnonzero(self._live)

    def range_hits(self, query: np.ndarray) -> np.ndarray:
        """Memtable element ids whose MBR intersects the query box, sorted."""
        rows = self._live_rows()
        if not rows.size:
            return np.empty(0, dtype=np.int64)
        mask = boxes_intersect_box(self._insert_mbrs[rows], np.asarray(query))
        return np.sort(self._insert_ids[rows[mask]])

    def mask(self, element_ids: np.ndarray) -> np.ndarray:
        """Drop tombstoned ids from a (sorted) base result array."""
        if not self._tombstones or not len(element_ids):
            return element_ids
        dead = np.fromiter(
            self._tombstones, dtype=np.int64, count=len(self._tombstones)
        )
        return element_ids[~np.isin(element_ids, dead)]

    def tombstoned(self, element_ids: np.ndarray) -> np.ndarray:
        """Boolean mask of ids deleted by this delta (paired filtering)."""
        if not self._tombstones or not len(element_ids):
            return np.zeros(len(element_ids), dtype=bool)
        dead = np.fromiter(
            self._tombstones, dtype=np.int64, count=len(self._tombstones)
        )
        return np.isin(element_ids, dead)

    def overlay(self, base_ids: np.ndarray, query: np.ndarray) -> np.ndarray:
        """A base crawl's sorted result, corrected for this delta.

        Tombstoned ids are masked out and memtable hits merged in; the
        two id sets are disjoint (memtable ids are above the base
        watermark), so a concatenate-and-sort is an exact merge.
        """
        kept = self.mask(base_ids)
        hits = self.range_hits(query)
        if not len(hits):
            return kept
        if not len(kept):
            return hits
        return np.sort(np.concatenate([kept, hits]))

    def contains_ids(self, element_ids: np.ndarray) -> np.ndarray:
        """Boolean mask of ids that are live memtable rows."""
        return np.fromiter(
            (int(eid) in self._row_of for eid in element_ids),
            dtype=bool,
            count=len(element_ids),
        )

    def distances(self, element_ids: np.ndarray, point: np.ndarray) -> np.ndarray:
        """MBR distances of live memtable ids to *point* (kNN support)."""
        rows = np.fromiter(
            (self._row_of[int(eid)] for eid in element_ids),
            dtype=np.int64,
            count=len(element_ids),
        )
        return mbr_distance_to_point(self._insert_mbrs[rows], np.asarray(point))

    def knn_candidates(self, point: np.ndarray) -> tuple:
        """All live memtable ids with their MBR distances to *point*.

        The memtable is bounded by the merge threshold, so handing the
        whole of it to a kNN merge is cheaper than any pruning.
        """
        rows = self._live_rows()
        if not rows.size:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        ids = self._insert_ids[rows]
        dists = mbr_distance_to_point(self._insert_mbrs[rows], np.asarray(point))
        return ids, dists

    def covering(self) -> np.ndarray | None:
        """Union box of the live memtable MBRs (``None`` when empty)."""
        rows = self._live_rows()
        if not rows.size:
            return None
        return mbr_union_many(self._insert_mbrs[rows])

    # -- lifecycle -------------------------------------------------------

    def copy(self) -> "DeltaIndex":
        """An independent copy (the serving layer's copy-on-write unit)."""
        clone = DeltaIndex(self.base_next_id)
        clone.next_id = self.next_id
        clone._insert_ids = self._insert_ids.copy()
        clone._insert_mbrs = self._insert_mbrs.copy()
        clone._live = self._live.copy()
        clone._row_of = dict(self._row_of)
        clone._tombstones = set(self._tombstones)
        return clone

    def drain(self) -> tuple:
        """The merge payload: ``(insert_ids, insert_mbrs, delete_ids, next_id)``.

        Only live memtable rows are replayed (elements inserted and
        deleted again inside the delta's lifetime never reach pages);
        ``next_id`` carries the watermark so the merged index advances
        past the consumed ids either way.  The delta itself is left
        untouched — the caller publishes a fresh one after the merge.
        """
        rows = self._live_rows()
        delete_ids = np.sort(
            np.fromiter(
                self._tombstones, dtype=np.int64, count=len(self._tombstones)
            )
        )
        return (
            self._insert_ids[rows],
            self._insert_mbrs[rows],
            delete_ids,
            self.next_id,
        )
