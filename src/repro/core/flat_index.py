"""FLAT: the two-phase (seed + crawl) range-query index.

Build (Sec. V): STR-partition the space (Algorithm 1), write one object
page per partition, compute neighbor partitions via a temporary R-Tree,
pack the resulting metadata records into the seed tree's leaves.

Query (Sec. VI, Algorithm 2): find one intersecting page through the
seed index, then breadth-first-search the neighbor graph — reading an
object page only if the record's *page MBR* intersects the query and
expanding neighbors only if its *partition MBR* does.

The BFS is executed one whole *frontier* at a time: each level's record
ids are fetched as a struct-of-arrays batch (decoding every touched
metadata leaf at most once), both MBR tests run as single vectorized
calls over the frontier, object pages are bulk-read, and the visited
set is a numpy bitmask.  The original record-at-a-time crawl is kept as
:meth:`FLATIndex.range_query_scalar` — the reference implementation a
differential test holds the batched engine to (same pages read, same
element ids returned).

Known deviation from the paper's pseudocode: Algorithm 2 as printed
only marks pages visited when their page MBR intersects the query, so
two mutually-neighboring records whose partitions (but not pages)
intersect the query would re-enqueue each other forever.  We mark
*records* visited on first enqueue, which terminates and provably reads
the same set of pages.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.intersect import boxes_intersect_box
from repro.geometry.mbr import (
    mbr_distance_to_point,
    mbr_union_many,
    point_as_box,
    validate_mbrs,
)
from repro.query.knn import expanding_radius_knn
from repro.storage.constants import OBJECT_PAGE_CAPACITY
from repro.storage.pagestore import PageStore
from repro.storage.serial import encode_element_page
from repro.storage.stats import CATEGORY_OBJECT
from repro.core.metadata import MetadataRecord
from repro.core.neighbors import compute_neighbors, neighbor_counts
from repro.core.partition import compute_partitions
from repro.core.seed_index import SeedIndex


@dataclass
class BuildReport:
    """Timings and statistics of one FLAT build (Fig. 10's breakdown)."""

    partitioning_seconds: float = 0.0
    finding_neighbors_seconds: float = 0.0
    packing_seconds: float = 0.0
    partition_count: int = 0
    pointer_counts: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def total_seconds(self) -> float:
        return (
            self.partitioning_seconds
            + self.finding_neighbors_seconds
            + self.packing_seconds
        )


@dataclass
class CrawlStats:
    """Per-query bookkeeping of the breadth-first search (Sec. VII-E.2)."""

    seeded: bool = False
    records_dequeued: int = 0
    #: Unique object pages read this query, seed-phase probes included.
    #: Each page is counted once even when the crawl revisits a page the
    #: seed phase already probed, so on a cold cache this equals the
    #: query's object-category buffer-miss reads in ``IOStats`` (the
    #: paper's per-query object-read metric).
    object_pages_read: int = 0
    #: Peak queued entries: deque length (scalar crawl) or frontier
    #: size (batched crawl; always <= the scalar peak for one query).
    max_queue_length: int = 0
    #: Visited-set footprint, measured as 8 bytes per visited record id
    #: in *both* engines so the metric stays comparable (the batched
    #: crawl's reusable bitmask is persistent index state, like the
    #: record directory, not per-query bookkeeping).
    visited_bytes: int = 0
    result_count: int = 0

    @property
    def bookkeeping_bytes(self) -> int:
        """Peak queue footprint: one 8-byte record id per queued entry.

        This is the paper's Sec. VII-E.2 metric (it counts the BFS
        queue); the visited set is accounted separately in
        :attr:`visited_bytes`.
        """
        return self.max_queue_length * 8

    @property
    def total_bookkeeping_bytes(self) -> int:
        """Queue plus visited-set footprint (everything the crawl retains)."""
        return self.bookkeeping_bytes + self.visited_bytes


class FLATIndex:
    """A bulkloaded FLAT index over a simulated page store."""

    def __init__(
        self,
        store: PageStore,
        seed_index: SeedIndex,
        object_page_element_ids: dict,
        element_count: int,
        build_report: BuildReport,
    ):
        self.store = store
        self.seed_index = seed_index
        #: object page id -> original element ids, in slot order.
        self.object_page_element_ids = object_page_element_ids
        self.element_count = element_count
        self.build_report = build_report
        self.last_crawl_stats: CrawlStats | None = None
        #: Expanding-radius rounds of the most recent :meth:`knn_query`.
        self.last_knn_rounds: int = 0
        #: Reusable visited bitmask for the batched crawl (cleared per
        #: query), so query cost never includes an O(record_count)
        #: allocation.
        self._visited_scratch: np.ndarray | None = None
        #: Lazily built kNN directories — ``element_page``/``element_slot``
        #: (element id -> object page / slot) and ``cover`` (the covering
        #: box).  A plain dict shared *by reference* across
        #: :meth:`with_store` clones, so whichever index or worker clone
        #: builds them first publishes them to every sibling (the values
        #: are deterministic, so a concurrent double-build is benign).
        self._knn_state: dict = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        store: PageStore,
        element_mbrs: np.ndarray,
        space_mbr: np.ndarray | None = None,
        page_capacity: int = OBJECT_PAGE_CAPACITY,
        seed_fanout: int | None = None,
        spatial_metadata_grouping: bool = True,
    ) -> "FLATIndex":
        """Bulkload FLAT over *element_mbrs* (Algorithm 1 + data layout).

        ``seed_fanout`` optionally caps the seed tree's internal fanout
        (kept in lockstep with the R-Tree baselines by the experiments'
        depth-matched configurations).  ``spatial_metadata_grouping``
        controls how metadata records are packed onto seed-tree leaves
        (STR tiles vs raw partition order; ablation knob).
        """
        element_mbrs = validate_mbrs(element_mbrs)
        if page_capacity > OBJECT_PAGE_CAPACITY:
            raise ValueError(
                f"page_capacity {page_capacity} exceeds the 4K page's "
                f"{OBJECT_PAGE_CAPACITY}-element capacity"
            )
        report = BuildReport()

        t0 = time.perf_counter()
        partitions = compute_partitions(element_mbrs, page_capacity, space_mbr)
        report.partitioning_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        compute_neighbors(partitions)
        report.finding_neighbors_seconds = time.perf_counter() - t0
        report.partition_count = len(partitions)
        report.pointer_counts = neighbor_counts(partitions)

        t0 = time.perf_counter()
        object_page_element_ids = {}
        records = []
        for i, partition in enumerate(partitions):
            payload = encode_element_page(element_mbrs[partition.element_ids])
            page_id = store.allocate(payload, CATEGORY_OBJECT)
            object_page_element_ids[page_id] = partition.element_ids
            records.append(
                MetadataRecord(
                    record_id=i,
                    page_mbr=partition.page_mbr,
                    partition_mbr=partition.partition_mbr,
                    object_page_id=page_id,
                    neighbor_ids=tuple(partition.neighbors),
                )
            )
        seed_index = SeedIndex.build(
            store,
            records,
            fanout=seed_fanout,
            spatial_grouping=spatial_metadata_grouping,
        )
        report.packing_seconds = time.perf_counter() - t0

        return cls(
            store, seed_index, object_page_element_ids, len(element_mbrs), report
        )

    # -- persistence -------------------------------------------------------

    def snapshot(self, directory) -> "Path":
        """Serialize this index (pages + directories) into *directory*.

        The snapshot is self-describing and reopenable with
        :meth:`restore`; see :mod:`repro.core.snapshot` for the layout.
        """
        from repro.core.snapshot import snapshot_index

        return snapshot_index(self, directory)

    @classmethod
    def restore(cls, directory, buffer=None, decoded=None) -> "FLATIndex":
        """Reopen a snapshot over a read-only mmap-backed file store.

        Queries against the restored index read the same pages and
        return the same element ids as against the original build.
        """
        from repro.core.snapshot import restore_index

        return restore_index(directory, buffer=buffer, decoded=decoded)

    def with_store(self, store: PageStore) -> "FLATIndex":
        """A shallow clone of this index served from *store*.

        *store* must expose the same page ids (typically a
        :meth:`~repro.storage.pagestore.PageStore.view` of this index's
        store).  Directories — the record directory, the object-page
        element ids, the build report — are shared read-only; per-query
        scratch state is per-clone, so each serving worker can crawl
        concurrently over its own stat-isolated store.
        """
        clone = FLATIndex(
            store,
            self.seed_index.with_store(store),
            self.object_page_element_ids,
            self.element_count,
            self.build_report,
        )
        # Immutable index state: clones share the holder itself, so the
        # kNN directories are built at most once across all clones no
        # matter who runs the first kNN query.
        clone._knn_state = self._knn_state
        return clone

    # -- querying -------------------------------------------------------------

    def range_query(self, query: np.ndarray) -> np.ndarray:
        """All element ids whose MBR intersects *query* (Algorithm 2).

        Frontier-batched BFS: every level of the crawl is processed as
        one :class:`~repro.core.seed_index.RecordBatch`, so the two MBR
        guards run as vectorized predicates over the whole frontier and
        each metadata leaf is decoded at most once per query.  Visits
        exactly the record set (and reads exactly the page set) of
        :meth:`range_query_scalar` — the guards depend only on the
        record, not on the path the BFS took to it.
        """
        query = np.asarray(query, dtype=np.float64)
        stats = CrawlStats()
        self.last_crawl_stats = stats

        seeded = self.seed_index.seed_query(query)
        pages_read = set(self.seed_index.last_probe_object_page_ids)
        stats.object_pages_read = len(pages_read)
        if seeded is None:
            return np.empty(0, dtype=np.int64)
        start_record, _slots = seeded
        stats.seeded = True

        results: list = []
        if self._visited_scratch is None:
            self._visited_scratch = np.zeros(self.seed_index.record_count, dtype=bool)
        else:
            self._visited_scratch.fill(False)
        visited = self._visited_scratch
        frontier = np.array([start_record.record_id], dtype=np.int64)
        visited[frontier] = True
        while frontier.size:
            stats.max_queue_length = max(stats.max_queue_length, len(frontier))
            stats.records_dequeued += len(frontier)
            batch = self.seed_index.fetch_records_batch(frontier)

            page_hits = boxes_intersect_box(batch.page_mbrs, query)
            hit_page_ids = batch.object_page_ids[page_hits]
            pages_read.update(int(pid) for pid in hit_page_ids)
            stats.object_pages_read = len(pages_read)
            for page_id, elements in zip(
                hit_page_ids, self.store.read_elements_many(hit_page_ids)
            ):
                mask = boxes_intersect_box(elements, query)
                if mask.any():
                    results.append(
                        self.object_page_element_ids[int(page_id)][mask]
                    )

            partition_hits = boxes_intersect_box(batch.partition_mbrs, query)
            candidates = batch.neighbors_of(partition_hits)
            if candidates.size:
                candidates = np.unique(candidates)
                frontier = candidates[~visited[candidates]]
                visited[frontier] = True
            else:
                frontier = np.empty(0, dtype=np.int64)

        # Every visited record was dequeued exactly once; 8 bytes per
        # retained id matches the scalar crawl's visited-set accounting.
        stats.visited_bytes = stats.records_dequeued * 8
        if not results:
            stats.result_count = 0
            return np.empty(0, dtype=np.int64)
        out = np.sort(np.concatenate(results))
        stats.result_count = len(out)
        return out

    def range_query_scalar(self, query: np.ndarray) -> np.ndarray:
        """Record-at-a-time reference crawl (the original Algorithm 2 loop).

        Kept verbatim as the behavioural baseline: fetches one metadata
        record per dequeue (re-decoding its leaf every time) and reads
        matching object pages one by one.  The differential test pins
        :meth:`range_query` to this implementation's page-read set and
        result set; the crawl micro-benchmark measures the decode work
        the batched engine saves over it.
        """
        query = np.asarray(query, dtype=np.float64)
        stats = CrawlStats()
        self.last_crawl_stats = stats

        seeded = self.seed_index.seed_query(query)
        pages_read = set(self.seed_index.last_probe_object_page_ids)
        stats.object_pages_read = len(pages_read)
        if seeded is None:
            return np.empty(0, dtype=np.int64)
        start_record, _slots = seeded
        stats.seeded = True

        results: list = []
        queue: deque = deque([start_record.record_id])
        enqueued = {start_record.record_id}
        while queue:
            stats.max_queue_length = max(stats.max_queue_length, len(queue))
            record_id = queue.popleft()
            stats.records_dequeued += 1
            record = self.seed_index.fetch_record(record_id)

            if boxes_intersect_box(record.page_mbr[None, :], query)[0]:
                elements = self.store.read_elements(
                    record.object_page_id, cached=False
                )
                pages_read.add(record.object_page_id)
                stats.object_pages_read = len(pages_read)
                mask = boxes_intersect_box(elements, query)
                if mask.any():
                    results.append(
                        self.object_page_element_ids[record.object_page_id][mask]
                    )

            if boxes_intersect_box(record.partition_mbr[None, :], query)[0]:
                for neighbor_id in record.neighbor_ids:
                    if neighbor_id not in enqueued:
                        enqueued.add(neighbor_id)
                        queue.append(neighbor_id)

        stats.visited_bytes = len(enqueued) * 8
        if not results:
            stats.result_count = 0
            return np.empty(0, dtype=np.int64)
        out = np.sort(np.concatenate(results))
        stats.result_count = len(out)
        return out

    def point_query(self, point: np.ndarray) -> np.ndarray:
        """Element ids whose MBR contains *point* (degenerate range query)."""
        return self.range_query(point_as_box(point))

    def knn_query(
        self, point: np.ndarray, k: int, return_distances: bool = False
    ) -> np.ndarray:
        """The *k* elements nearest to *point*, as an expanding-radius crawl.

        FLAT has no hierarchy to best-first search, so kNN runs the
        shared expanding-radius skeleton
        (:func:`~repro.query.knn.expanding_radius_knn`) over the seeded
        BFS: crawl a growing box, confirm candidates whose MBR distance
        is within the radius, stop when ``k`` are confirmed — typically
        one or two rounds thanks to the density-estimated first radius
        (:attr:`last_knn_rounds`).

        Results are sorted by ``(distance, element id)``; ties are
        broken by id, matching the brute-force baseline the tests pin
        against.  ``return_distances=True`` additionally returns the
        matching distances (used by the sharded planner's pruning).
        """
        stats = CrawlStats()

        def crawl(box):
            ids = self.range_query(box)
            round_stats = self.last_crawl_stats
            stats.seeded = stats.seeded or round_stats.seeded
            stats.records_dequeued += round_stats.records_dequeued
            stats.max_queue_length = max(
                stats.max_queue_length, round_stats.max_queue_length
            )
            stats.visited_bytes = max(
                stats.visited_bytes, round_stats.visited_bytes
            )
            # Each box contains every earlier one, so the last round's
            # unique-page count is the crawl's page footprint.
            stats.object_pages_read = round_stats.object_pages_read
            return ids

        ids, dists, rounds = expanding_radius_knn(
            point,
            k,
            element_count=self.element_count,
            cover=self.covering_mbr(),
            range_query=crawl,
            distances=self._element_distances,
        )
        stats.result_count = len(ids)
        self.last_crawl_stats = stats
        self.last_knn_rounds = rounds
        if return_distances:
            return ids, dists
        return ids

    def _element_distances(self, ids: np.ndarray, point: np.ndarray) -> np.ndarray:
        """MBR distances of the given element ids to *point*.

        Reads go through the store (buffer + decoded cache), so pages
        the crawl just visited cost no further physical I/O.
        """
        if "element_page" not in self._knn_state:
            page = np.empty(self.element_count, dtype=np.int64)
            slot = np.empty(self.element_count, dtype=np.int64)
            for page_id, element_ids in self.object_page_element_ids.items():
                page[element_ids] = page_id
                slot[element_ids] = np.arange(len(element_ids))
            self._knn_state["element_slot"] = slot
            self._knn_state["element_page"] = page
        element_page = self._knn_state["element_page"]
        element_slot = self._knn_state["element_slot"]
        dists = np.empty(len(ids), dtype=np.float64)
        pages = element_page[ids]
        for page_id in np.unique(pages):
            mask = pages == page_id
            elements = self.store.read_elements(int(page_id))
            boxes = elements[element_slot[ids[mask]]]
            dists[mask] = mbr_distance_to_point(boxes, point)
        return dists

    def covering_mbr(self) -> np.ndarray:
        """The box covering all partitions (the build's effective space).

        Computed once from the metadata records (partition MBRs tile the
        space gap-free, so their union is exactly the space box passed
        to — or derived by — :meth:`build`), cached and shared across
        :meth:`with_store` clones; restored indexes recover it the same
        way.
        """
        if "cover" not in self._knn_state:
            boxes = np.stack(
                [record.partition_mbr for record in self.seed_index.iter_records()]
            )
            self._knn_state["cover"] = mbr_union_many(boxes)
        return self._knn_state["cover"]

    # -- introspection -----------------------------------------------------------

    @property
    def object_page_count(self) -> int:
        return len(self.object_page_element_ids)

    @property
    def metadata_page_count(self) -> int:
        return len(self.seed_index.leaf_page_ids)

    @property
    def seed_internal_page_count(self) -> int:
        return self.seed_index.internal_node_count()

    def pointer_count_histogram(self) -> dict:
        """Neighbor pointer count -> number of partitions (Fig. 20)."""
        values, counts = np.unique(self.build_report.pointer_counts, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}
