"""FLAT: the two-phase (seed + crawl) range-query index.

Build (Sec. V): STR-partition the space (Algorithm 1), write one object
page per partition, compute neighbor partitions via a temporary R-Tree,
pack the resulting metadata records into the seed tree's leaves.

Query (Sec. VI, Algorithm 2): find one intersecting page through the
seed index, then breadth-first-search the neighbor graph — reading an
object page only if the record's *page MBR* intersects the query and
expanding neighbors only if its *partition MBR* does.

The BFS is executed one whole *frontier* at a time: each level's record
ids are fetched as a struct-of-arrays batch (decoding every touched
metadata leaf at most once), both MBR tests run as single vectorized
calls over the frontier, object pages are bulk-read, and the visited
set is a numpy bitmask.  The original record-at-a-time crawl is kept as
:meth:`FLATIndex.range_query_scalar` — the reference implementation a
differential test holds the batched engine to (same pages read, same
element ids returned).

Known deviation from the paper's pseudocode: Algorithm 2 as printed
only marks pages visited when their page MBR intersects the query, so
two mutually-neighboring records whose partitions (but not pages)
intersect the query would re-enqueue each other forever.  We mark
*records* visited on first enqueue, which terminates and provably reads
the same set of pages.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.intersect import boxes_intersect_box, pairwise_intersects
from repro.geometry.mbr import (
    mbr_center,
    mbr_contains_mbr,
    mbr_contains_point,
    mbr_distance_to_point,
    mbr_union,
    mbr_union_many,
    mbr_volume,
    point_as_box,
    validate_mbrs,
)
from repro.query.knn import expanding_radius_knn
from repro.storage.constants import (
    NODE_FANOUT,
    OBJECT_PAGE_CAPACITY,
    PAGE_HEADER_BYTES,
    PAGE_SIZE,
)
from repro.storage.pagestore import PageStore, PageStoreError
from repro.storage.serial import (
    decode_element_page,
    encode_element_page,
    encode_metadata_page,
    metadata_record_bytes,
)
from repro.storage.stats import (
    CATEGORY_METADATA,
    CATEGORY_OBJECT,
    CATEGORY_SEED_INTERNAL,
)
from repro.core.metadata import MetadataRecord
from repro.core.neighbors import compute_neighbors, neighbor_counts
from repro.core.partition import compute_partitions
from repro.core.seed_index import SeedIndex
from repro.rtree.rtree import pack_upper_levels
from repro.rtree.str_bulk import str_groups


@dataclass
class BuildReport:
    """Timings and statistics of one FLAT build (Fig. 10's breakdown)."""

    partitioning_seconds: float = 0.0
    finding_neighbors_seconds: float = 0.0
    packing_seconds: float = 0.0
    partition_count: int = 0
    pointer_counts: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def total_seconds(self) -> float:
        return (
            self.partitioning_seconds
            + self.finding_neighbors_seconds
            + self.packing_seconds
        )


@dataclass
class _MutableState:
    """In-RAM maintenance directories of a mutable FLAT index.

    Built lazily on the first :meth:`FLATIndex.insert` /
    :meth:`FLATIndex.delete` from the serialized metadata records; the
    write path keeps them in sync with the pages it rewrites.  Arrays
    are indexed by record id (dead records keep their slot, flagged by
    ``live``); ``space_mbr`` is the box the partition boxes tile
    gap-free — the invariant the crawl's completeness proof rests on.
    """

    page_mbrs: np.ndarray         # (R, 6) per-record page MBRs.
    partition_mbrs: np.ndarray    # (R, 6) per-record partition MBRs.
    object_page_ids: np.ndarray   # (R,) object page of each record; -1 dead.
    neighbors: list               # per-record sets of neighbor record ids.
    live: np.ndarray              # (R,) bool.
    element_page: dict            # element id -> object page id.
    record_of_page: dict          # object page id -> record id.
    space_mbr: np.ndarray         # (6,) box tiled by the partitions.
    #: Seed-leaf page id -> cached union of its records' page MBRs (the
    #: leaf's key in the tree).  Lets a flush detect that no key moved
    #: and skip repacking the upper levels entirely.
    leaf_mbrs: dict = field(default_factory=dict)


@dataclass
class CrawlStats:
    """Per-query bookkeeping of the breadth-first search (Sec. VII-E.2)."""

    seeded: bool = False
    records_dequeued: int = 0
    #: Unique object pages read this query, seed-phase probes included.
    #: Each page is counted once even when the crawl revisits a page the
    #: seed phase already probed, so on a cold cache this equals the
    #: query's object-category buffer-miss reads in ``IOStats`` (the
    #: paper's per-query object-read metric).
    object_pages_read: int = 0
    #: Peak queued entries: deque length (scalar crawl) or frontier
    #: size (batched crawl; always <= the scalar peak for one query).
    max_queue_length: int = 0
    #: Visited-set footprint, measured as 8 bytes per visited record id
    #: in *both* engines so the metric stays comparable (the batched
    #: crawl's reusable bitmask is persistent index state, like the
    #: record directory, not per-query bookkeeping).
    visited_bytes: int = 0
    result_count: int = 0

    @property
    def bookkeeping_bytes(self) -> int:
        """Peak queue footprint: one 8-byte record id per queued entry.

        This is the paper's Sec. VII-E.2 metric (it counts the BFS
        queue); the visited set is accounted separately in
        :attr:`visited_bytes`.
        """
        return self.max_queue_length * 8

    @property
    def total_bookkeeping_bytes(self) -> int:
        """Queue plus visited-set footprint (everything the crawl retains)."""
        return self.bookkeeping_bytes + self.visited_bytes


class FLATIndex:
    """A bulkloaded FLAT index over a simulated page store."""

    def __init__(
        self,
        store: PageStore,
        seed_index: SeedIndex,
        object_page_element_ids: dict,
        element_count: int,
        build_report: BuildReport,
        page_capacity: int = OBJECT_PAGE_CAPACITY,
        next_id: int | None = None,
    ):
        self.store = store
        self.seed_index = seed_index
        #: object page id -> original element ids, in slot order.
        self.object_page_element_ids = object_page_element_ids
        #: Live elements (deletes decrement, inserts increment).
        self.element_count = element_count
        #: Per-object-page element cap the index was built with; the
        #: write path splits pages that would exceed it.
        self.page_capacity = page_capacity
        #: Element-id watermark: ids of deleted elements are never
        #: reused, so id-indexed directories size to this, not to
        #: :attr:`element_count`.
        self._next_id = element_count if next_id is None else next_id
        self.build_report = build_report
        self.last_crawl_stats: CrawlStats | None = None
        #: Expanding-radius rounds of the most recent :meth:`knn_query`.
        self.last_knn_rounds: int = 0
        #: Reusable visited bitmask for the batched crawl (cleared per
        #: query), so query cost never includes an O(record_count)
        #: allocation.
        self._visited_scratch: np.ndarray | None = None
        #: Lazily built kNN directories — ``element_page``/``element_slot``
        #: (element id -> object page / slot) and ``cover`` (the covering
        #: box).  A plain dict shared *by reference* across
        #: :meth:`with_store` clones, so whichever index or worker clone
        #: builds them first publishes them to every sibling (the values
        #: are deterministic, so a concurrent double-build is benign).
        self._knn_state: dict = {}
        #: Maintenance directories of the write path, built lazily on
        #: the first mutation (:class:`_MutableState`).
        self._mut: _MutableState | None = None
        #: Records created by splits in the current batch, as
        #: ``(new_record_id, sibling_record_id)`` — flushed onto leaves
        #: next to their sibling by :meth:`_flush_metadata`.
        self._pending_records: list = []
        #: Records retired by merges in the current batch.
        self._dead_records: set = set()
        #: While a batch is applying, the set of record ids whose links
        #: need recomputing; :meth:`_refresh_neighbors` parks ids here
        #: instead of repairing eagerly, and :meth:`_repair_links_bulk`
        #: settles the whole set once per commit.  ``None`` outside a
        #: batch (eager repair).
        self._deferred_links: set | None = None
        #: Optional :class:`~repro.core.delta.DeltaIndex` overlaid on
        #: this index's query answers (attached by :meth:`with_delta`).
        #: The delta lives purely in RAM: its hits are unioned into
        #: results *after* the crawl, so page-read accounting is
        #: untouched.
        self.delta = None

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        store: PageStore,
        element_mbrs: np.ndarray,
        space_mbr: np.ndarray | None = None,
        page_capacity: int = OBJECT_PAGE_CAPACITY,
        seed_fanout: int | None = None,
        spatial_metadata_grouping: bool = True,
    ) -> "FLATIndex":
        """Bulkload FLAT over *element_mbrs* (Algorithm 1 + data layout).

        ``seed_fanout`` optionally caps the seed tree's internal fanout
        (kept in lockstep with the R-Tree baselines by the experiments'
        depth-matched configurations).  ``spatial_metadata_grouping``
        controls how metadata records are packed onto seed-tree leaves
        (STR tiles vs raw partition order; ablation knob).
        """
        element_mbrs = validate_mbrs(element_mbrs)
        if page_capacity > OBJECT_PAGE_CAPACITY:
            raise ValueError(
                f"page_capacity {page_capacity} exceeds the 4K page's "
                f"{OBJECT_PAGE_CAPACITY}-element capacity"
            )
        report = BuildReport()

        t0 = time.perf_counter()
        partitions = compute_partitions(element_mbrs, page_capacity, space_mbr)
        report.partitioning_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        compute_neighbors(partitions)
        report.finding_neighbors_seconds = time.perf_counter() - t0
        report.partition_count = len(partitions)
        report.pointer_counts = neighbor_counts(partitions)

        t0 = time.perf_counter()
        object_page_element_ids = {}
        records = []
        for i, partition in enumerate(partitions):
            payload = encode_element_page(element_mbrs[partition.element_ids])
            page_id = store.allocate(payload, CATEGORY_OBJECT)
            object_page_element_ids[page_id] = partition.element_ids
            records.append(
                MetadataRecord(
                    record_id=i,
                    page_mbr=partition.page_mbr,
                    partition_mbr=partition.partition_mbr,
                    object_page_id=page_id,
                    neighbor_ids=tuple(partition.neighbors),
                )
            )
        seed_index = SeedIndex.build(
            store,
            records,
            fanout=seed_fanout,
            spatial_grouping=spatial_metadata_grouping,
        )
        report.packing_seconds = time.perf_counter() - t0

        return cls(
            store,
            seed_index,
            object_page_element_ids,
            len(element_mbrs),
            report,
            page_capacity=page_capacity,
        )

    # -- persistence -------------------------------------------------------

    def snapshot(self, directory, codec="raw") -> "Path":
        """Export this index (pages + directories) into *directory*.

        The snapshot is self-describing and reopenable with
        :meth:`restore`; see :mod:`repro.core.snapshot` for the layout.
        *codec* selects the physical page codec of the exported store
        (:mod:`repro.storage.codec`) — queries against the restore are
        byte-identical either way.  Exporting writes generation 0 of a
        fresh directory; an index living on a writable file store
        publishes further generations in place with
        :meth:`snapshot_generation`.
        """
        from repro.core.snapshot import snapshot_index

        return snapshot_index(self, directory, codec=codec)

    def snapshot_generation(self) -> int:
        """Publish the current state as the next snapshot generation.

        Copy-on-write: only pages touched since the last generation
        occupy new space in the data file, and every earlier generation
        stays restorable.  Requires an index built on a writable
        :class:`~repro.storage.filestore.FilePageStore`.
        """
        from repro.core.snapshot import snapshot_generation

        return snapshot_generation(self)

    @classmethod
    def restore(cls, directory, generation=None, buffer=None,
                decoded=None) -> "FLATIndex":
        """Reopen a snapshot over a read-only mmap-backed file store.

        Loads the latest published generation unless *generation* names
        an older one.  Queries against the restored index read the same
        pages and return the same element ids as against the original
        build.
        """
        from repro.core.snapshot import restore_index

        return restore_index(
            directory, generation=generation, buffer=buffer, decoded=decoded
        )

    def with_store(self, store: PageStore) -> "FLATIndex":
        """A shallow clone of this index served from *store*.

        *store* must expose the same page ids (typically a
        :meth:`~repro.storage.pagestore.PageStore.view` of this index's
        store).  Directories — the record directory, the object-page
        element ids, the build report — are shared read-only; per-query
        scratch state is per-clone, so each serving worker can crawl
        concurrently over its own stat-isolated store.
        """
        clone = FLATIndex(
            store,
            self.seed_index.with_store(store),
            self.object_page_element_ids,
            self.element_count,
            self.build_report,
            page_capacity=self.page_capacity,
            next_id=self._next_id,
        )
        # Immutable index state: clones share the holder itself, so the
        # kNN directories are built at most once across all clones no
        # matter who runs the first kNN query.
        clone._knn_state = self._knn_state
        # Serving clones must answer with the same delta overlay as the
        # index they were cloned from (the delta itself is read-only
        # once attached).
        clone.delta = self.delta
        return clone

    def with_delta(self, delta) -> "FLATIndex":
        """A read clone of this index with *delta* overlaid on answers.

        The clone serves the same pages through the same store; only the
        query methods change — tombstoned ids are masked out of crawl
        results and the delta memtable's matching elements are unioned
        in.  *delta* must have been built against this index's id
        watermark and is treated as immutable once attached (the serving
        layer publishes a fresh copy per absorbed commit).
        """
        clone = self.with_store(self.store)
        clone.delta = delta
        return clone

    def fork(self) -> "FLATIndex":
        """A copy-on-write clone that can be mutated independently.

        The forked index serves the same pages through a forked store
        (unchanged payloads shared, see
        :meth:`~repro.storage.pagestore.PageStore.fork`) and gets its
        own copies of every directory the write path touches, so
        ``insert``/``delete`` on the fork never perturb this index or
        any reader still crawling it.  This is the unit of the serving
        layer's snapshot isolation: mutate a fork, then atomically swap
        readers over to it.
        """
        store = self.store.fork()
        seed = self.seed_index
        seed_copy = SeedIndex(
            store,
            seed.root_id,
            seed.height,
            list(seed.leaf_page_ids),
            seed.record_page.copy(),
            seed.record_slot.copy(),
            dict(seed.leaf_record_ids),
            fanout=seed.fanout,
        )
        clone = FLATIndex(
            store,
            seed_copy,
            dict(self.object_page_element_ids),
            self.element_count,
            self.build_report,
            page_capacity=self.page_capacity,
            next_id=self._next_id,
        )
        # The write path replaces directory values wholesale (it never
        # mutates shared arrays in place), so shallow dict copies above
        # are enough.
        clone._knn_state = dict(self._knn_state)
        if self._mut is not None:
            # Copy the maintenance directories rather than letting the
            # fork rebuild them from pages: commits on a long-lived
            # service would otherwise pay an O(index) metadata decode
            # for every batch, however small.
            mut = self._mut
            clone._mut = _MutableState(
                page_mbrs=mut.page_mbrs.copy(),
                partition_mbrs=mut.partition_mbrs.copy(),
                object_page_ids=mut.object_page_ids.copy(),
                neighbors=[set(links) for links in mut.neighbors],
                live=mut.live.copy(),
                element_page=dict(mut.element_page),
                record_of_page=dict(mut.record_of_page),
                space_mbr=mut.space_mbr.copy(),
                # Values are replaced wholesale on recompute, so a
                # shallow copy keeps the caches independent.
                leaf_mbrs=dict(mut.leaf_mbrs),
            )
        return clone

    # -- updates --------------------------------------------------------------
    #
    # The write path maintains the build's three crawl invariants:
    #
    # 1. the partition boxes cover ``space_mbr`` gap-free (splits tile a
    #    partition's box, merges only *union* boxes, and growing the
    #    space extends every partition on the grown face through the new
    #    slab);
    # 2. every partition box contains its page MBR;
    # 3. two records are linked iff their partition boxes intersect
    #    (repaired exactly after every box change — discovery runs as
    #    one vectorized in-RAM scan, mirroring the build's temporary
    #    R-Tree, while page writes stay limited to the affected records'
    #    leaves).
    #
    # Together these keep Algorithm 2 complete after any interleaving of
    # inserts and deletes: the differential tests pin a mutated index's
    # range/point/kNN answers to a from-scratch rebuild.
    #
    # Mutating an index that has live :meth:`with_store` clones is not
    # supported — clones share directories by reference.  Concurrent
    # serving uses :meth:`fork` + commit instead (see
    # :meth:`repro.query.service.QueryService.apply_updates`).

    def insert(self, element_mbrs: np.ndarray) -> np.ndarray:
        """Insert elements; returns their newly assigned element ids.

        Each element routes to the live partition whose box contains
        its center (smallest such box; the nearest box once the space
        has been grown to cover outliers).  Pages that would exceed
        :attr:`page_capacity` split in two along the longest axis of
        their partition box; affected metadata records are rewritten in
        their seed leaves and the seed tree's internal levels are
        repacked once per batch.
        """
        return self.apply_batch(insert_mbrs=element_mbrs)

    def delete(self, element_ids) -> None:
        """Delete elements by id; unknown ids raise ``KeyError``.

        Deletes shrink page MBRs exactly but never shrink partition
        boxes (shrinking could open a coverage gap the crawl would fall
        into).  A page left under a quarter of :attr:`page_capacity`
        merges into the neighbor whose box union grows least, retiring
        its record.
        """
        self.apply_batch(delete_ids=element_ids)

    def apply_batch(
        self,
        insert_mbrs: np.ndarray | None = None,
        delete_ids=None,
        *,
        insert_ids: np.ndarray | None = None,
        next_id: int | None = None,
    ) -> np.ndarray:
        """Apply one commit's inserts and deletes as a single bulk pass.

        This is the write path proper: :meth:`insert` and :meth:`delete`
        are thin wrappers over it, and a delta merge replays its whole
        memtable through one call.  The batch pays its structural costs
        once per commit, not once per element —

        * elements are routed to partitions in one vectorized pass and
          each touched object page is decoded/rewritten once;
        * link repair is deferred: every box change parks its record id
          and :meth:`_repair_links_bulk` recomputes the affected
          adjacency exactly, once, against the batch's *final* partition
          boxes (links are a pure function of those boxes, so the result
          is identical to eager per-change repair);
        * seed leaves are rewritten and the upper levels repacked in the
          single end-of-batch :meth:`_flush_metadata`.

        ``delete_ids`` must name live elements of this index (ids being
        inserted by the same call are not yet visible to the delete
        phase); unknown ids raise ``KeyError`` naming every missing id,
        duplicates raise ``ValueError``, and validation runs before any
        state is touched.  An empty batch is a cheap no-op.

        ``insert_ids`` / ``next_id`` let a delta merge replay its
        already-assigned element ids and advance the id watermark past
        ids the delta consumed (inserted-then-deleted elements never
        reach pages but their ids must stay retired).  Returns the
        inserted elements' ids.
        """
        if insert_mbrs is None:
            insert_mbrs = np.empty((0, 6), dtype=np.float64)
        insert_mbrs = validate_mbrs(np.atleast_2d(insert_mbrs))
        if delete_ids is None:
            delete_ids = np.empty(0, dtype=np.int64)
        delete_ids = np.atleast_1d(np.asarray(delete_ids, dtype=np.int64))
        if insert_ids is not None:
            new_ids = np.atleast_1d(np.asarray(insert_ids, dtype=np.int64))
            if len(new_ids) != len(insert_mbrs):
                raise ValueError(
                    f"insert_ids has {len(new_ids)} ids for "
                    f"{len(insert_mbrs)} elements"
                )
        else:
            new_ids = np.arange(
                self._next_id, self._next_id + len(insert_mbrs), dtype=np.int64
            )
        if not len(insert_mbrs) and not len(delete_ids):
            # Cheap no-op: no page, directory or store access.  The
            # watermark may still advance (a drained delta whose every
            # insert was deleted again still consumed those ids).
            if next_id is not None:
                self._next_id = max(self._next_id, int(next_id))
            return new_ids
        self._check_mutable()
        mut = self._ensure_mutable()
        # Validate the whole delete batch before touching anything: a
        # bad id must not leave pages half-mutated with the metadata
        # unflushed.
        if len(delete_ids):
            unique: set = set()
            missing: list = []
            for eid in delete_ids:
                eid = int(eid)
                if eid in unique:
                    raise ValueError(
                        f"duplicate element id {eid} in delete batch"
                    )
                unique.add(eid)
                if eid not in mut.element_page:
                    missing.append(eid)
            if missing:
                raise KeyError(f"unknown element ids: {sorted(missing)}")
        dirty: set = set()
        self._deferred_links = set()
        try:
            if len(insert_mbrs):
                batch_box = mbr_union_many(insert_mbrs)
                if not bool(mbr_contains_mbr(mut.space_mbr, batch_box)):
                    self._grow_space(batch_box, dirty)
                self._next_id = max(self._next_id, int(new_ids.max()) + 1)
                routed = self._route_batch(mbr_center(insert_mbrs))
                # Group the batch by routed record so each touched object
                # page is decoded and rewritten once per batch, not once
                # per element (on file stores every rewrite appends a
                # whole physical page).
                per_record: dict = {}
                for pos, rid in enumerate(routed):
                    per_record.setdefault(int(rid), []).append(pos)
                for rid, positions in per_record.items():
                    page_id = int(mut.object_page_ids[rid])
                    ids = np.append(
                        self.object_page_element_ids[page_id], new_ids[positions]
                    )
                    mbrs = np.vstack(
                        [self._page_elements(page_id), insert_mbrs[positions]]
                    )
                    self._place(rid, page_id, ids, mbrs, dirty)
                self.element_count += len(new_ids)
            if len(delete_ids):
                # Group by object page: one decode/rewrite per touched
                # page, with the underflow check on the page's final count.
                per_page: dict = {}
                for eid in delete_ids:
                    eid = int(eid)
                    per_page.setdefault(mut.element_page.pop(eid), []).append(eid)
                for page_id, eids in per_page.items():
                    self._remove_elements(
                        page_id, np.asarray(eids, dtype=np.int64), dirty
                    )
                self.element_count -= len(delete_ids)
            self._repair_links_bulk(dirty)
        finally:
            self._deferred_links = None
        if next_id is not None:
            self._next_id = max(self._next_id, int(next_id))
        self._flush_metadata(dirty)
        self._invalidate_query_state()
        return new_ids

    # -- update internals -----------------------------------------------------

    def _check_mutable(self) -> None:
        """Fail *before* any in-RAM state is touched on read-only stores.

        Discovering the read-only backend mid-batch (on the first page
        rewrite) would leave the maintenance directories desynced from
        the pages; restored snapshots mutate through :meth:`fork`.
        """
        if not self.store.backend.writable:
            raise PageStoreError(
                "index store is read-only (restored snapshot); fork() the "
                "index and mutate the fork"
            )

    def _ensure_mutable(self) -> _MutableState:
        """Build the maintenance directories from the serialized records."""
        if self._mut is not None:
            return self._mut
        count = self.seed_index.record_count
        page_mbrs = np.zeros((count, 6), dtype=np.float64)
        partition_mbrs = np.zeros((count, 6), dtype=np.float64)
        object_page_ids = np.full(count, -1, dtype=np.int64)
        neighbors = [set() for _ in range(count)]
        live = np.zeros(count, dtype=bool)
        for record in self.seed_index.iter_records():
            rid = record.record_id
            page_mbrs[rid] = record.page_mbr
            partition_mbrs[rid] = record.partition_mbr
            object_page_ids[rid] = record.object_page_id
            neighbors[rid] = set(record.neighbor_ids)
            live[rid] = True
        element_page = {
            int(eid): page_id
            for page_id, ids in self.object_page_element_ids.items()
            for eid in ids
        }
        record_of_page = {
            int(object_page_ids[rid]): int(rid) for rid in np.flatnonzero(live)
        }
        # The build tiles the space box exactly and stretches partitions
        # only within it, so the union of live partition boxes *is* the
        # covered space; inserts grow it explicitly from here on.
        self._mut = _MutableState(
            page_mbrs=page_mbrs,
            partition_mbrs=partition_mbrs,
            object_page_ids=object_page_ids,
            neighbors=neighbors,
            live=live,
            element_page=element_page,
            record_of_page=record_of_page,
            space_mbr=mbr_union_many(partition_mbrs[live]),
        )
        return self._mut

    def _invalidate_query_state(self) -> None:
        self._knn_state.clear()

    def _page_elements(self, page_id: int) -> np.ndarray:
        """Current element MBRs of an object page (maintenance read)."""
        return decode_element_page(self.store.read_silent(page_id))

    def _live_records(self) -> np.ndarray:
        return np.flatnonzero(self._mut.live)

    def _route(self, center: np.ndarray) -> int:
        """The record whose partition receives an element at *center*."""
        mut = self._mut
        live_ids = self._live_records()
        boxes = mut.partition_mbrs[live_ids]
        inside = live_ids[mbr_contains_point(boxes, center)]
        if inside.size:
            # Smallest containing box; ties go to the lowest record id.
            return int(inside[np.argmin(mbr_volume(mut.partition_mbrs[inside]))])
        return int(live_ids[np.argmin(mbr_distance_to_point(boxes, center))])

    def _route_batch(self, centers: np.ndarray) -> np.ndarray:
        """Route a whole batch of element centers (:meth:`_route`, vectorized).

        Same per-element answer as :meth:`_route` — smallest containing
        live partition box, ties to the lowest record id, nearest box
        for centers outside every partition — computed as a chunked
        containment matrix instead of one directory scan per element.
        Chunks bound the matrix at a few million cells, so memory stays
        flat however large the batch.
        """
        mut = self._mut
        live_ids = self._live_records()
        boxes = mut.partition_mbrs[live_ids]
        vols = mbr_volume(boxes)
        out = np.empty(len(centers), dtype=np.int64)
        chunk = max(1, 4_000_000 // max(1, len(live_ids)))
        for start in range(0, len(centers), chunk):
            sub = centers[start:start + chunk]
            inside = np.all(
                (boxes[:, None, :3] <= sub[None, :, :])
                & (sub[None, :, :] <= boxes[:, None, 3:]),
                axis=2,
            )  # (live, sub)
            # argmin's first-hit tie-break is the lowest record id:
            # live_ids ascends and vols is aligned to it.
            best = np.argmin(np.where(inside, vols[:, None], np.inf), axis=0)
            out[start:start + len(sub)] = live_ids[best]
            for j in np.flatnonzero(~inside.any(axis=0)):
                out[start + j] = live_ids[
                    np.argmin(mbr_distance_to_point(boxes, sub[j]))
                ]
        return out

    def _grow_space(self, needed: np.ndarray, dirty: set) -> None:
        """Extend the covered space box to enclose *needed*.

        Growing a face pushes every partition box touching the old face
        out to the new one, so the boundary partitions tile the new
        slab and the gap-free invariant survives; their links are then
        repaired.  This is what keeps far-outlier inserts crawlable —
        a lone stretched "finger" into uncovered space could strand
        results behind a connectivity gap.
        """
        mut = self._mut
        grown: set = set()
        live_ids = self._live_records()
        new_space = mbr_union(mut.space_mbr, needed)
        for face in range(6):
            if new_space[face] == mut.space_mbr[face]:
                continue
            boxes = mut.partition_mbrs[live_ids]
            touching = live_ids[boxes[:, face] == mut.space_mbr[face]]
            mut.partition_mbrs[touching, face] = new_space[face]
            grown.update(int(rid) for rid in touching)
        mut.space_mbr = new_space
        for rid in sorted(grown):
            dirty.add(rid)
            self._refresh_neighbors(rid, dirty)

    def _refresh_neighbors(self, rid: int, dirty: set) -> None:
        """Recompute *rid*'s links exactly; keep symmetry, mark leaves.

        Inside :meth:`apply_batch` the repair is deferred — the id is
        parked and :meth:`_repair_links_bulk` settles the whole commit's
        adjacency in one vectorized pass against the final boxes.
        Neighbor sets are only ever updated in symmetric pairs, so the
        directory stays symmetric (if stale) between the two.
        """
        if self._deferred_links is not None:
            self._deferred_links.add(int(rid))
            return
        mut = self._mut
        live_ids = self._live_records()
        hits = live_ids[
            boxes_intersect_box(
                mut.partition_mbrs[live_ids], mut.partition_mbrs[rid]
            )
        ]
        new_set = {int(h) for h in hits if int(h) != rid}
        old_set = mut.neighbors[rid]
        if new_set == old_set:
            return
        for gone in old_set - new_set:
            mut.neighbors[gone].discard(rid)
            dirty.add(gone)
        for come in new_set - old_set:
            mut.neighbors[come].add(rid)
            dirty.add(come)
        mut.neighbors[rid] = new_set
        dirty.add(rid)

    def _repair_links_bulk(self, dirty: set) -> None:
        """Settle the batch's deferred link repairs in one exact pass.

        Every record whose partition box changed this batch gets its
        neighbor set recomputed against *all* live partition boxes via
        a chunked intersection matrix, with symmetric add/remove diffs
        applied (and the affected leaves marked dirty) exactly as the
        eager repair would.  A link ``(a, b)`` changes only if ``a``'s
        or ``b``'s box changed, and any such record is in the deferred
        set — so recomputing the deferred records' rows repairs the
        whole adjacency.  Records retired mid-batch were already
        scrubbed symmetrically by :meth:`_try_merge` and are skipped.
        """
        pending = self._deferred_links
        self._deferred_links = None
        if not pending:
            return
        mut = self._mut
        live_ids = self._live_records()
        todo = np.asarray(
            sorted(rid for rid in pending if mut.live[rid]), dtype=np.int64
        )
        if not todo.size:
            return
        chunk = max(1, 4_000_000 // max(1, len(live_ids)))
        for start in range(0, len(todo), chunk):
            sub = todo[start:start + chunk]
            hits = pairwise_intersects(
                mut.partition_mbrs[sub], mut.partition_mbrs[live_ids]
            )
            for row, rid in enumerate(sub):
                rid = int(rid)
                new_set = {
                    int(h) for h in live_ids[hits[row]] if int(h) != rid
                }
                old_set = mut.neighbors[rid]
                if new_set == old_set:
                    continue
                for gone in old_set - new_set:
                    mut.neighbors[gone].discard(rid)
                    dirty.add(gone)
                for come in new_set - old_set:
                    mut.neighbors[come].add(rid)
                    dirty.add(come)
                mut.neighbors[rid] = new_set
                dirty.add(rid)

    def _set_object_page(self, rid: int, page_id: int, ids: np.ndarray,
                         mbrs: np.ndarray, dirty: set) -> None:
        """Rewrite one record's object page and refresh its boxes."""
        mut = self._mut
        self.store.rewrite(page_id, encode_element_page(mbrs))
        self.object_page_element_ids[page_id] = ids
        if len(mbrs):
            page_mbr = mbr_union_many(mbrs)
        else:
            # An emptied page keeps a degenerate point box at its
            # partition's lower corner: never matches real queries in
            # practice, always stays inside the partition box, and
            # keeps every MBR finite for serialization and STR packing.
            corner = mut.partition_mbrs[rid][:3]
            page_mbr = np.concatenate([corner, corner])
        if not np.array_equal(page_mbr, mut.page_mbrs[rid]):
            mut.page_mbrs[rid] = page_mbr
            dirty.add(rid)
        widened = mbr_union(mut.partition_mbrs[rid], page_mbr)
        if not np.array_equal(widened, mut.partition_mbrs[rid]):
            mut.partition_mbrs[rid] = widened
            dirty.add(rid)
            self._refresh_neighbors(rid, dirty)

    def _place(self, rid: int, page_id: int, ids: np.ndarray,
               mbrs: np.ndarray, dirty: set) -> None:
        """Settle *ids*/*mbrs* as record *rid*'s elements, splitting as
        long as they exceed the page capacity."""
        mut = self._mut
        if len(ids) <= self.page_capacity:
            for eid in ids:
                mut.element_page[int(eid)] = page_id
            self._set_object_page(rid, page_id, ids, mbrs, dirty)
            return
        self._split(rid, page_id, ids, mbrs, dirty)

    def _split(self, rid: int, page_id: int, ids: np.ndarray,
               mbrs: np.ndarray, dirty: set) -> None:
        """Split an overfull partition in two along its longest axis.

        The two half-boxes tile the old partition box exactly (cut at
        the midpoint between the straddling element centers), each then
        stretched to its own page MBR — the same shape Algorithm 1
        produces, so all build invariants carry over.  The second half
        becomes a brand-new record on a freshly allocated object page;
        a half still overfull after a batched insert simply splits
        again (recursively, via :meth:`_place`).
        """
        mut = self._mut
        part_box = mut.partition_mbrs[rid].copy()
        axis = int(np.argmax(part_box[3:] - part_box[:3]))
        centers = mbr_center(mbrs)[:, axis]
        order = np.argsort(centers, kind="stable")
        half = len(order) // 2
        low, high = order[:half], order[half:]
        cut = 0.5 * (centers[low[-1]] + centers[high[0]])

        box_low, box_high = part_box.copy(), part_box.copy()
        box_low[axis + 3] = cut
        box_high[axis] = cut

        # Register the new record with a placeholder empty page; the
        # recursive placement below writes the real contents (and may
        # split further).
        new_rid = len(mut.live)
        corner = box_high[:3]
        new_page_id = self.store.allocate(
            encode_element_page(np.empty((0, 6))), CATEGORY_OBJECT
        )
        mut.page_mbrs = np.vstack(
            [mut.page_mbrs, np.concatenate([corner, corner])[None, :]]
        )
        mut.partition_mbrs = np.vstack([mut.partition_mbrs, box_high[None, :]])
        mut.object_page_ids = np.append(mut.object_page_ids, new_page_id)
        mut.neighbors.append(set())
        mut.live = np.append(mut.live, True)
        mut.record_of_page[new_page_id] = new_rid
        self.object_page_element_ids[new_page_id] = np.empty(0, dtype=np.int64)
        seed = self.seed_index
        seed.record_page = np.append(seed.record_page, -1)
        seed.record_slot = np.append(seed.record_slot, -1)
        # The new record spills from the splitting record's leaf, so it
        # lands next to its spatial sibling (or on a fresh leaf).
        self._pending_records.append((new_rid, rid))

        mut.partition_mbrs[rid] = box_low
        self._place(rid, page_id, ids[low], mbrs[low], dirty)
        self._place(new_rid, new_page_id, ids[high], mbrs[high], dirty)
        dirty.add(rid)
        dirty.add(new_rid)
        self._refresh_neighbors(rid, dirty)
        self._refresh_neighbors(new_rid, dirty)

    def _remove_elements(self, page_id: int, eids: np.ndarray,
                         dirty: set) -> None:
        """Drop a batch's elements from one object page (one rewrite)."""
        mut = self._mut
        rid = mut.record_of_page[page_id]
        ids = self.object_page_element_ids[page_id]
        keep = ~np.isin(ids, eids)
        self._set_object_page(
            rid, page_id, ids[keep], self._page_elements(page_id)[keep], dirty
        )
        remaining = int(keep.sum())
        if remaining == 0 or remaining * 4 < self.page_capacity:
            self._try_merge(rid, dirty)

    def _try_merge(self, rid: int, dirty: set) -> None:
        """Fold an underfull record into a neighbor, if one has room.

        The surviving partition box becomes the union of both boxes —
        a superset, so coverage is preserved — and the retired record
        is unlinked everywhere.  With no roomy neighbor (or none at
        all) the record simply stays, possibly empty.
        """
        mut = self._mut
        my_page = int(mut.object_page_ids[rid])
        my_ids = self.object_page_element_ids[my_page]
        room = [
            nbr
            for nbr in sorted(mut.neighbors[rid])
            if len(self.object_page_element_ids[int(mut.object_page_ids[nbr])])
            + len(my_ids)
            <= self.page_capacity
        ]
        if not room:
            return
        target = min(
            room,
            key=lambda nbr: (
                float(
                    mbr_volume(
                        mbr_union(mut.partition_mbrs[nbr], mut.partition_mbrs[rid])
                    )
                ),
                nbr,
            ),
        )
        target_page = int(mut.object_page_ids[target])
        merged_ids = np.append(self.object_page_element_ids[target_page], my_ids)
        merged_mbrs = np.vstack(
            [self._page_elements(target_page), self._page_elements(my_page)]
        )
        for eid in my_ids:
            mut.element_page[int(eid)] = target_page
        mut.partition_mbrs[target] = mbr_union(
            mut.partition_mbrs[target], mut.partition_mbrs[rid]
        )
        dirty.add(target)
        self._set_object_page(target, target_page, merged_ids, merged_mbrs, dirty)

        # Retire the merged-away record.
        mut.live[rid] = False
        mut.object_page_ids[rid] = -1
        del mut.record_of_page[my_page]
        del self.object_page_element_ids[my_page]
        for nbr in mut.neighbors[rid]:
            mut.neighbors[nbr].discard(rid)
            dirty.add(nbr)
        mut.neighbors[rid] = set()
        dirty.discard(rid)
        self._dead_records.add(rid)
        self._refresh_neighbors(target, dirty)

    def _flush_metadata(self, dirty: set) -> None:
        """Rewrite affected seed leaves, then repack the upper levels.

        Changed records are re-encoded on their current leaf; records
        that no longer fit (neighbor lists grew) spill — together with
        brand-new records — onto freshly allocated leaves.  Internal
        levels are rebuilt once per batch from the final leaf set, so
        seed descents always see fresh key MBRs.
        """
        mut = self._mut
        seed = self.seed_index
        new_records = self._pending_records
        dead_records = self._dead_records
        self._pending_records = []
        self._dead_records = set()
        if not dirty and not new_records and not dead_records:
            return

        touched = {}
        for rid in dirty:
            leaf = int(seed.record_page[rid])
            if leaf >= 0:
                touched.setdefault(leaf, list(seed.leaf_record_ids[leaf]))
        for rid in dead_records:
            leaf = int(seed.record_page[rid])
            if leaf >= 0:
                rids = touched.setdefault(leaf, list(seed.leaf_record_ids[leaf]))
                rids.remove(rid)
                seed.record_page[rid] = -1
                seed.record_slot[rid] = -1
        for new_rid, sibling in new_records:
            leaf = int(seed.record_page[sibling])
            if leaf >= 0:
                touched.setdefault(leaf, list(seed.leaf_record_ids[leaf])).append(
                    new_rid
                )
            else:  # sibling itself is still pending (several splits deep)
                touched.setdefault(-1, [])
                touched[-1].append(new_rid)

        budget = PAGE_SIZE - PAGE_HEADER_BYTES
        keys_moved = False
        overflow = list(touched.pop(-1, []))
        for leaf, rids in touched.items():
            kept, used = [], 0
            for rid in rids:
                size = metadata_record_bytes(len(mut.neighbors[rid]))
                if used + size > budget:
                    overflow.append(rid)
                    continue
                kept.append(rid)
                used += size
            if not kept:
                seed.leaf_page_ids.remove(leaf)
                del seed.leaf_record_ids[leaf]
                mut.leaf_mbrs.pop(leaf, None)
                keys_moved = True
                continue
            self._write_leaf(leaf, kept, allocate=False)
            key = mbr_union_many(mut.page_mbrs[seed.leaf_record_ids[leaf]])
            cached = mut.leaf_mbrs.get(leaf)
            if cached is None or not np.array_equal(cached, key):
                mut.leaf_mbrs[leaf] = key
                keys_moved = True

        while overflow:
            chunk, used = [], 0
            while overflow:
                size = metadata_record_bytes(len(mut.neighbors[overflow[0]]))
                if chunk and used + size > budget:
                    break
                used += size
                chunk.append(overflow.pop(0))
            new_leaf = self._write_leaf(None, chunk, allocate=True)
            mut.leaf_mbrs[new_leaf] = mbr_union_many(
                mut.page_mbrs[seed.leaf_record_ids[new_leaf]]
            )
            keys_moved = True

        # Repack the internal levels only when some leaf key actually
        # moved (or a leaf appeared/vanished): rewrites that touch only
        # neighbor lists leave every existing internal page valid, so a
        # small batch does not pay — or allocate — the whole upper tree.
        if not keys_moved:
            return
        for leaf in seed.leaf_page_ids:
            if leaf not in mut.leaf_mbrs:  # first flush populates lazily
                mut.leaf_mbrs[leaf] = mbr_union_many(
                    mut.page_mbrs[seed.leaf_record_ids[leaf]]
                )
        seed.root_id, seed.height = pack_upper_levels(
            self.store,
            seed.leaf_page_ids,
            np.stack([mut.leaf_mbrs[leaf] for leaf in seed.leaf_page_ids]),
            str_groups,
            CATEGORY_SEED_INTERNAL,
            NODE_FANOUT if seed.fanout is None else seed.fanout,
        )

    def _write_leaf(self, leaf, rids: list, allocate: bool) -> int:
        """Serialize *rids* onto one seed leaf; update the directory."""
        mut = self._mut
        seed = self.seed_index
        payload = encode_metadata_page(
            [
                (
                    mut.page_mbrs[rid],
                    mut.partition_mbrs[rid],
                    int(mut.object_page_ids[rid]),
                    sorted(mut.neighbors[rid]),
                )
                for rid in rids
            ]
        )
        if allocate:
            leaf = self.store.allocate(payload, CATEGORY_METADATA)
            seed.leaf_page_ids.append(leaf)
        else:
            self.store.rewrite(leaf, payload)
        ids = np.asarray(rids, dtype=np.int64)
        seed.leaf_record_ids[leaf] = ids
        seed.record_page[ids] = leaf
        seed.record_slot[ids] = np.arange(len(ids))
        return leaf

    # -- querying -------------------------------------------------------------

    def range_query(self, query: np.ndarray) -> np.ndarray:
        """All element ids whose MBR intersects *query* (Algorithm 2).

        Frontier-batched BFS: every level of the crawl is processed as
        one :class:`~repro.core.seed_index.RecordBatch`, so the two MBR
        guards run as vectorized predicates over the whole frontier and
        each metadata leaf is decoded at most once per query.  Visits
        exactly the record set (and reads exactly the page set) of
        :meth:`range_query_scalar` — the guards depend only on the
        record, not on the path the BFS took to it.
        """
        query = np.asarray(query, dtype=np.float64)
        stats = CrawlStats()
        self.last_crawl_stats = stats

        seeded = self.seed_index.seed_query(query)
        pages_read = set(self.seed_index.last_probe_object_page_ids)
        stats.object_pages_read = len(pages_read)
        if seeded is None:
            # The delta can hold elements outside the crawled space
            # (e.g. inserts past the committed space box), so the
            # overlay applies even when seeding found nothing.
            return self._overlay_delta(
                np.empty(0, dtype=np.int64), query, stats
            )
        start_record, _slots = seeded
        stats.seeded = True

        results: list = []
        record_count = self.seed_index.record_count
        if self._visited_scratch is None or len(self._visited_scratch) < record_count:
            # (Re)sized when the write path has grown the record set.
            self._visited_scratch = np.zeros(record_count, dtype=bool)
        else:
            self._visited_scratch.fill(False)
        visited = self._visited_scratch
        frontier = np.array([start_record.record_id], dtype=np.int64)
        visited[frontier] = True
        while frontier.size:
            stats.max_queue_length = max(stats.max_queue_length, len(frontier))
            stats.records_dequeued += len(frontier)
            batch = self.seed_index.fetch_records_batch(frontier)

            page_hits = boxes_intersect_box(batch.page_mbrs, query)
            hit_page_ids = batch.object_page_ids[page_hits]
            pages_read.update(int(pid) for pid in hit_page_ids)
            stats.object_pages_read = len(pages_read)
            for page_id, elements in zip(
                hit_page_ids, self.store.read_elements_many(hit_page_ids)
            ):
                mask = boxes_intersect_box(elements, query)
                if mask.any():
                    results.append(
                        self.object_page_element_ids[int(page_id)][mask]
                    )

            partition_hits = boxes_intersect_box(batch.partition_mbrs, query)
            candidates = batch.neighbors_of(partition_hits)
            if candidates.size:
                candidates = np.unique(candidates)
                frontier = candidates[~visited[candidates]]
                visited[frontier] = True
            else:
                frontier = np.empty(0, dtype=np.int64)

        # Every visited record was dequeued exactly once; 8 bytes per
        # retained id matches the scalar crawl's visited-set accounting.
        stats.visited_bytes = stats.records_dequeued * 8
        if not results:
            stats.result_count = 0
            return self._overlay_delta(
                np.empty(0, dtype=np.int64), query, stats
            )
        out = np.sort(np.concatenate(results))
        stats.result_count = len(out)
        return self._overlay_delta(out, query, stats)

    def _overlay_delta(
        self, out: np.ndarray, query: np.ndarray, stats: CrawlStats
    ) -> np.ndarray:
        """Correct a crawl's sorted result for the attached delta.

        Pure RAM: tombstoned ids drop out, memtable hits merge in, and
        no store counter moves — so every page-read pin stays byte-exact
        with or without a delta attached.  ``range_query_scalar`` (the
        pre-delta reference crawl) deliberately skips this.
        """
        if self.delta is None or self.delta.is_empty:
            return out
        out = self.delta.overlay(out, query)
        stats.result_count = len(out)
        return out

    def range_query_scalar(self, query: np.ndarray) -> np.ndarray:
        """Record-at-a-time reference crawl (the original Algorithm 2 loop).

        Kept verbatim as the behavioural baseline: fetches one metadata
        record per dequeue (re-decoding its leaf every time) and reads
        matching object pages one by one.  The differential test pins
        :meth:`range_query` to this implementation's page-read set and
        result set; the crawl micro-benchmark measures the decode work
        the batched engine saves over it.
        """
        query = np.asarray(query, dtype=np.float64)
        stats = CrawlStats()
        self.last_crawl_stats = stats

        seeded = self.seed_index.seed_query(query)
        pages_read = set(self.seed_index.last_probe_object_page_ids)
        stats.object_pages_read = len(pages_read)
        if seeded is None:
            return np.empty(0, dtype=np.int64)
        start_record, _slots = seeded
        stats.seeded = True

        results: list = []
        queue: deque = deque([start_record.record_id])
        enqueued = {start_record.record_id}
        while queue:
            stats.max_queue_length = max(stats.max_queue_length, len(queue))
            record_id = queue.popleft()
            stats.records_dequeued += 1
            record = self.seed_index.fetch_record(record_id)

            if boxes_intersect_box(record.page_mbr[None, :], query)[0]:
                elements = self.store.read_elements(
                    record.object_page_id, cached=False
                )
                pages_read.add(record.object_page_id)
                stats.object_pages_read = len(pages_read)
                mask = boxes_intersect_box(elements, query)
                if mask.any():
                    results.append(
                        self.object_page_element_ids[record.object_page_id][mask]
                    )

            if boxes_intersect_box(record.partition_mbr[None, :], query)[0]:
                for neighbor_id in record.neighbor_ids:
                    if neighbor_id not in enqueued:
                        enqueued.add(neighbor_id)
                        queue.append(neighbor_id)

        stats.visited_bytes = len(enqueued) * 8
        if not results:
            stats.result_count = 0
            return np.empty(0, dtype=np.int64)
        out = np.sort(np.concatenate(results))
        stats.result_count = len(out)
        return out

    def range_query_multi(self, queries: np.ndarray, cold: bool = True) -> list:
        """Serve a batch of range queries with one joint crawl.

        Returns one sorted id array per query, each exactly
        :meth:`range_query`'s answer; every metadata leaf and object
        page touched by the group is decoded once, not once per query.
        With ``cold=True`` each query is charged its serial cold-cache
        page reads (identical ``IOStats`` read totals); ``cold=False``
        serves the group warm through this store's persistent caches.
        See :func:`repro.core.multicrawl.crawl_multi`.
        """
        from repro.core.multicrawl import crawl_multi

        results = crawl_multi(self, queries, cold=cold)
        if self.delta is not None and not self.delta.is_empty:
            queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
            results = [
                self.delta.overlay(ids, query)
                for ids, query in zip(results, queries)
            ]
            self.last_crawl_stats.result_count = sum(
                len(ids) for ids in results
            )
        return results

    def point_query(self, point: np.ndarray) -> np.ndarray:
        """Element ids whose MBR contains *point* (degenerate range query)."""
        return self.range_query(point_as_box(point))

    def knn_query(
        self, point: np.ndarray, k: int, return_distances: bool = False
    ) -> np.ndarray:
        """The *k* elements nearest to *point*, as an expanding-radius crawl.

        FLAT has no hierarchy to best-first search, so kNN runs the
        shared expanding-radius skeleton
        (:func:`~repro.query.knn.expanding_radius_knn`) over the seeded
        BFS: crawl a growing box, confirm candidates whose MBR distance
        is within the radius, stop when ``k`` are confirmed — typically
        one or two rounds thanks to the density-estimated first radius
        (:attr:`last_knn_rounds`).

        Results are sorted by ``(distance, element id)``; ties are
        broken by id, matching the brute-force baseline the tests pin
        against.  ``return_distances=True`` additionally returns the
        matching distances (used by the sharded planner's pruning).
        """
        stats = CrawlStats()

        def crawl(box):
            ids = self.range_query(box)
            round_stats = self.last_crawl_stats
            stats.seeded = stats.seeded or round_stats.seeded
            stats.records_dequeued += round_stats.records_dequeued
            stats.max_queue_length = max(
                stats.max_queue_length, round_stats.max_queue_length
            )
            stats.visited_bytes = max(
                stats.visited_bytes, round_stats.visited_bytes
            )
            # Each box contains every earlier one, so the last round's
            # unique-page count is the crawl's page footprint.
            stats.object_pages_read = round_stats.object_pages_read
            return ids

        cover = self.covering_mbr()
        if self.delta is not None and not self.delta.is_empty:
            # Delta elements can sit outside the committed space; the
            # radius expansion must know the true covered extent (and
            # live count) or it could stop before reaching them.
            extra = self.delta.covering()
            if extra is not None:
                cover = mbr_union(cover, extra)
        ids, dists, rounds = expanding_radius_knn(
            point,
            k,
            element_count=self.live_element_count,
            cover=cover,
            range_query=crawl,
            distances=self._element_distances,
        )
        stats.result_count = len(ids)
        self.last_crawl_stats = stats
        self.last_knn_rounds = rounds
        if return_distances:
            return ids, dists
        return ids

    def _element_distances(self, ids: np.ndarray, point: np.ndarray) -> np.ndarray:
        """MBR distances of the given element ids to *point*.

        Ids above the committed watermark live in the delta memtable
        (crawl results only ever contain committed or delta ids), and
        their distances come straight from its in-RAM boxes.
        """
        if self.delta is not None and not self.delta.is_empty:
            in_delta = self.delta.contains_ids(ids)
            if in_delta.any():
                dists = np.empty(len(ids), dtype=np.float64)
                dists[in_delta] = self.delta.distances(ids[in_delta], point)
                if not in_delta.all():
                    dists[~in_delta] = self._base_element_distances(
                        ids[~in_delta], point
                    )
                return dists
        return self._base_element_distances(ids, point)

    def _base_element_distances(
        self, ids: np.ndarray, point: np.ndarray
    ) -> np.ndarray:
        """MBR distances of committed element ids to *point*.

        Reads go through the store (buffer + decoded cache), so pages
        the crawl just visited cost no further physical I/O.
        """
        if "element_page" not in self._knn_state:
            # Sized to the id watermark, not the live count: deleted
            # element ids leave holes that are never looked up.
            page = np.empty(self._next_id, dtype=np.int64)
            slot = np.empty(self._next_id, dtype=np.int64)
            for page_id, element_ids in self.object_page_element_ids.items():
                page[element_ids] = page_id
                slot[element_ids] = np.arange(len(element_ids))
            self._knn_state["element_slot"] = slot
            self._knn_state["element_page"] = page
        element_page = self._knn_state["element_page"]
        element_slot = self._knn_state["element_slot"]
        dists = np.empty(len(ids), dtype=np.float64)
        pages = element_page[ids]
        for page_id in np.unique(pages):
            mask = pages == page_id
            elements = self.store.read_elements(int(page_id))
            boxes = elements[element_slot[ids[mask]]]
            dists[mask] = mbr_distance_to_point(boxes, point)
        return dists

    def covering_mbr(self) -> np.ndarray:
        """The box covering all partitions (the build's effective space).

        Computed once from the metadata records (partition MBRs tile the
        space gap-free, so their union is exactly the space box passed
        to — or derived by — :meth:`build`), cached and shared across
        :meth:`with_store` clones; restored indexes recover it the same
        way.
        """
        if "cover" not in self._knn_state:
            boxes = np.stack(
                [record.partition_mbr for record in self.seed_index.iter_records()]
            )
            self._knn_state["cover"] = mbr_union_many(boxes)
        return self._knn_state["cover"]

    # -- introspection -----------------------------------------------------------

    @property
    def next_element_id(self) -> int:
        """The id watermark: the id the next inserted element receives.

        Deleted ids are never reused, so this only ever advances — a
        :class:`~repro.core.delta.DeltaIndex` built over this index
        seeds its own watermark from here.
        """
        return self._next_id

    @property
    def live_element_count(self) -> int:
        """Committed live elements plus the attached delta's net change."""
        if self.delta is None:
            return self.element_count
        return self.element_count + self.delta.element_delta

    def contains_elements(self, element_ids) -> np.ndarray:
        """Boolean mask of which *element_ids* are live committed elements.

        Answers from the element directory (built lazily, then cached);
        purely an in-RAM lookup, valid on read-only restored snapshots
        too.  The attached delta, if any, is *not* consulted — this is
        the base-index membership test the delta's own delete validation
        builds on.
        """
        element_ids = np.atleast_1d(np.asarray(element_ids, dtype=np.int64))
        element_page = self._ensure_mutable().element_page
        return np.fromiter(
            (int(eid) in element_page for eid in element_ids),
            dtype=bool,
            count=len(element_ids),
        )

    @property
    def object_page_count(self) -> int:
        return len(self.object_page_element_ids)

    @property
    def metadata_page_count(self) -> int:
        return len(self.seed_index.leaf_page_ids)

    @property
    def seed_internal_page_count(self) -> int:
        return self.seed_index.internal_node_count()

    def pointer_count_histogram(self) -> dict:
        """Neighbor pointer count -> number of partitions (Fig. 20)."""
        values, counts = np.unique(self.build_report.pointer_counts, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}
