"""FLAT: the two-phase (seed + crawl) range-query index.

Build (Sec. V): STR-partition the space (Algorithm 1), write one object
page per partition, compute neighbor partitions via a temporary R-Tree,
pack the resulting metadata records into the seed tree's leaves.

Query (Sec. VI, Algorithm 2): find one intersecting page through the
seed index, then breadth-first-search the neighbor graph — reading an
object page only if the record's *page MBR* intersects the query and
expanding neighbors only if its *partition MBR* does.

Known deviation from the paper's pseudocode: Algorithm 2 as printed
only marks pages visited when their page MBR intersects the query, so
two mutually-neighboring records whose partitions (but not pages)
intersect the query would re-enqueue each other forever.  We mark
*records* visited on first enqueue, which terminates and provably reads
the same set of pages.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.intersect import boxes_intersect_box
from repro.geometry.mbr import validate_mbrs
from repro.storage.constants import OBJECT_PAGE_CAPACITY
from repro.storage.pagestore import PageStore
from repro.storage.serial import decode_element_page, encode_element_page
from repro.storage.stats import CATEGORY_OBJECT
from repro.core.metadata import MetadataRecord
from repro.core.neighbors import compute_neighbors, neighbor_counts
from repro.core.partition import compute_partitions
from repro.core.seed_index import SeedIndex


@dataclass
class BuildReport:
    """Timings and statistics of one FLAT build (Fig. 10's breakdown)."""

    partitioning_seconds: float = 0.0
    finding_neighbors_seconds: float = 0.0
    packing_seconds: float = 0.0
    partition_count: int = 0
    pointer_counts: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def total_seconds(self) -> float:
        return (
            self.partitioning_seconds
            + self.finding_neighbors_seconds
            + self.packing_seconds
        )


@dataclass
class CrawlStats:
    """Per-query bookkeeping of the breadth-first search (Sec. VII-E.2)."""

    seeded: bool = False
    records_dequeued: int = 0
    object_pages_read: int = 0
    max_queue_length: int = 0
    result_count: int = 0

    @property
    def bookkeeping_bytes(self) -> int:
        """Peak queue footprint: one 8-byte record id per queued entry."""
        return self.max_queue_length * 8


class FLATIndex:
    """A bulkloaded FLAT index over a simulated page store."""

    def __init__(
        self,
        store: PageStore,
        seed_index: SeedIndex,
        object_page_element_ids: dict,
        element_count: int,
        build_report: BuildReport,
    ):
        self.store = store
        self.seed_index = seed_index
        #: object page id -> original element ids, in slot order.
        self.object_page_element_ids = object_page_element_ids
        self.element_count = element_count
        self.build_report = build_report
        self.last_crawl_stats: CrawlStats | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        store: PageStore,
        element_mbrs: np.ndarray,
        space_mbr: np.ndarray | None = None,
        page_capacity: int = OBJECT_PAGE_CAPACITY,
        seed_fanout: int | None = None,
        spatial_metadata_grouping: bool = True,
    ) -> "FLATIndex":
        """Bulkload FLAT over *element_mbrs* (Algorithm 1 + data layout).

        ``seed_fanout`` optionally caps the seed tree's internal fanout
        (kept in lockstep with the R-Tree baselines by the experiments'
        depth-matched configurations).  ``spatial_metadata_grouping``
        controls how metadata records are packed onto seed-tree leaves
        (STR tiles vs raw partition order; ablation knob).
        """
        element_mbrs = validate_mbrs(element_mbrs)
        if page_capacity > OBJECT_PAGE_CAPACITY:
            raise ValueError(
                f"page_capacity {page_capacity} exceeds the 4K page's "
                f"{OBJECT_PAGE_CAPACITY}-element capacity"
            )
        report = BuildReport()

        t0 = time.perf_counter()
        partitions = compute_partitions(element_mbrs, page_capacity, space_mbr)
        report.partitioning_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        compute_neighbors(partitions)
        report.finding_neighbors_seconds = time.perf_counter() - t0
        report.partition_count = len(partitions)
        report.pointer_counts = neighbor_counts(partitions)

        t0 = time.perf_counter()
        object_page_element_ids = {}
        records = []
        for i, partition in enumerate(partitions):
            payload = encode_element_page(element_mbrs[partition.element_ids])
            page_id = store.allocate(payload, CATEGORY_OBJECT)
            object_page_element_ids[page_id] = partition.element_ids
            records.append(
                MetadataRecord(
                    record_id=i,
                    page_mbr=partition.page_mbr,
                    partition_mbr=partition.partition_mbr,
                    object_page_id=page_id,
                    neighbor_ids=tuple(partition.neighbors),
                )
            )
        seed_index = SeedIndex.build(
            store,
            records,
            fanout=seed_fanout,
            spatial_grouping=spatial_metadata_grouping,
        )
        report.packing_seconds = time.perf_counter() - t0

        return cls(
            store, seed_index, object_page_element_ids, len(element_mbrs), report
        )

    # -- querying -------------------------------------------------------------

    def range_query(self, query: np.ndarray) -> np.ndarray:
        """All element ids whose MBR intersects *query* (Algorithm 2)."""
        query = np.asarray(query, dtype=np.float64)
        stats = CrawlStats()
        self.last_crawl_stats = stats

        seeded = self.seed_index.seed_query(query)
        if seeded is None:
            return np.empty(0, dtype=np.int64)
        start_record, _slots = seeded
        stats.seeded = True

        results: list = []
        queue: deque = deque([start_record.record_id])
        enqueued = {start_record.record_id}
        while queue:
            stats.max_queue_length = max(stats.max_queue_length, len(queue))
            record_id = queue.popleft()
            stats.records_dequeued += 1
            record = self.seed_index.fetch_record(record_id)

            if boxes_intersect_box(record.page_mbr[None, :], query)[0]:
                elements = decode_element_page(
                    self.store.read(record.object_page_id)
                )
                stats.object_pages_read += 1
                mask = boxes_intersect_box(elements, query)
                if mask.any():
                    results.append(
                        self.object_page_element_ids[record.object_page_id][mask]
                    )

            if boxes_intersect_box(record.partition_mbr[None, :], query)[0]:
                for neighbor_id in record.neighbor_ids:
                    if neighbor_id not in enqueued:
                        enqueued.add(neighbor_id)
                        queue.append(neighbor_id)

        if not results:
            return np.empty(0, dtype=np.int64)
        out = np.sort(np.concatenate(results))
        stats.result_count = len(out)
        return out

    def point_query(self, point: np.ndarray) -> np.ndarray:
        """Element ids whose MBR contains *point* (degenerate range query)."""
        point = np.asarray(point, dtype=np.float64)
        return self.range_query(np.concatenate([point, point]))

    # -- introspection -----------------------------------------------------------

    @property
    def object_page_count(self) -> int:
        return len(self.object_page_element_ids)

    @property
    def metadata_page_count(self) -> int:
        return len(self.seed_index.leaf_page_ids)

    @property
    def seed_internal_page_count(self) -> int:
        return self.seed_index.internal_node_count()

    def pointer_count_histogram(self) -> dict:
        """Neighbor pointer count -> number of partitions (Fig. 20)."""
        values, counts = np.unique(self.build_report.pointer_counts, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}
