"""Shared CLI plumbing for the benchmark scripts.

Every ``benchmarks/bench_*.py`` entry point takes the same workload
knobs (element count, volume side, query count, seed) and emits a JSON
artifact whose ``checks`` section doubles as the exit code.  This
module holds that boilerplate once; each benchmark adds only its own
flags (worker sweeps, shard counts, ...) on top.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def workload_parser(
    description: str,
    *,
    elements: int,
    side: float,
    queries: int,
    seed: int,
    out: str,
) -> argparse.ArgumentParser:
    """An argument parser with the shared workload flags, defaults filled."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--elements", type=int, default=elements)
    parser.add_argument("--side", type=float, default=side)
    parser.add_argument("--queries", type=int, default=queries)
    parser.add_argument("--seed", type=int, default=seed)
    parser.add_argument(
        "--out", type=Path, default=Path(out),
        help="where to write the JSON artifact",
    )
    return parser


def describe_workload(report: dict) -> str:
    """The one-line workload banner every benchmark prints first."""
    workload = report["workload"]
    return (
        f"workload: {workload['benchmark']} x{workload['query_count']} on "
        f"{workload['n_elements']} elements"
    )


def finish(report: dict, out: Path) -> int:
    """Write the artifact, print the checks, derive the exit code."""
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"checks: {report['checks']}")
    print(f"wrote {out}")
    return 0 if all(report["checks"].values()) else 1
