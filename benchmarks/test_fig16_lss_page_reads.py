"""Fig. 16: LSS total page reads, FLAT vs the R-Trees (see DESIGN.md §4)."""

from repro.experiments import fig16_lss_page_reads as experiment

from conftest import run_figure


def test_fig16(benchmark, config):
    run_figure(benchmark, experiment.run, config)
