"""Fig. 20: neighbor-pointer distribution across densities (see DESIGN.md §4)."""

from repro.experiments import fig20_pointer_distribution as experiment

from conftest import run_figure


def test_fig20(benchmark, config):
    run_figure(benchmark, experiment.run, config)
