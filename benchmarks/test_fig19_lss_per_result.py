"""Fig. 19: LSS page reads per result element (see DESIGN.md §4)."""

from repro.experiments import fig19_lss_per_result as experiment

from conftest import run_figure


def test_fig19(benchmark, config):
    run_figure(benchmark, experiment.run, config)
