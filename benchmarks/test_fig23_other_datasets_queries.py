"""Fig. 23: query time and speed-up on the Sec. VIII data sets (see DESIGN.md §4)."""

from repro.experiments import fig23_other_datasets_queries as experiment

from conftest import run_figure


def test_fig23(benchmark, config):
    run_figure(benchmark, experiment.run, config)
