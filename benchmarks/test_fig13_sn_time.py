"""Fig. 13: SN execution time (simulated I/O + CPU) (see DESIGN.md §4)."""

from repro.experiments import fig13_sn_time as experiment

from conftest import run_figure


def test_fig13(benchmark, config):
    run_figure(benchmark, experiment.run, config)
