"""Ablation: cold caches vs a shared warm buffer pool.

The paper clears OS caches before every query, which is the regime all
figures are measured in.  This bench quantifies how much a warm,
capacity-bounded LRU buffer would change the picture — the seed tree's
upper levels become free, exactly the pages the R-Trees also keep hot.
"""

from repro.core import FLATIndex
from repro.data import build_microcircuit
from repro.query import run_queries, sn_benchmark
from repro.storage import PageStore


def test_warm_buffer_absorbs_hierarchy_reads(benchmark):
    circuit = build_microcircuit(20_000, side=18.0, seed=13)
    queries = sn_benchmark(query_count=40).queries(circuit.space_mbr, seed=14)
    store = PageStore()
    index = FLATIndex.build(store, circuit.mbrs(), space_mbr=circuit.space_mbr)

    def both():
        cold = run_queries(index, store, queries, "flat", clear_cache_between=True)
        warm = run_queries(index, store, queries, "flat", clear_cache_between=False)
        return cold.total_page_reads, warm.total_page_reads

    cold, warm = benchmark.pedantic(both, iterations=1, rounds=1)
    print(f"\nSN page reads: cold={cold}, warm={warm}")
    assert warm < cold, "a warm buffer must absorb repeated hierarchy reads"
