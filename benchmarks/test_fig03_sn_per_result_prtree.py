"""Fig. 3: SN page reads per result element on the PR-Tree (see DESIGN.md §4)."""

from repro.experiments import fig03_sn_per_result_prtree as experiment

from conftest import run_figure


def test_fig03(benchmark, config):
    run_figure(benchmark, experiment.run, config)
