"""Fig. 11: index size breakdown, FLAT vs PR-Tree (see DESIGN.md §4)."""

from repro.experiments import fig11_index_size as experiment

from conftest import run_figure


def test_fig11(benchmark, config):
    run_figure(benchmark, experiment.run, config)
