"""Micro-benchmark: query latency under snapshot-isolated update storms.

Builds a sharded FLAT index over one microcircuit density step and
serves the SN range workload through
:class:`~repro.query.service.QueryService` in three phases:

* **before** — steady-state serving, no writers;
* **during** — an updater thread applies insert+delete batches through
  :meth:`~repro.query.service.QueryService.apply_updates` (each commit
  forks the current generation copy-on-write and atomically swaps it
  in) while the query loop keeps serving;
* **after** — steady-state serving on the final generation.

Reported per phase: query throughput, mean latency and page reads per
query; for the storm itself: update throughput (elements applied per
second) and per-commit wall time.  The correctness gate re-checks a
sample of the served queries against a brute-force scan of the final
element set — served results must be exact after any number of commits.

A second, **sustained-stream** section measures the LSM-style write
path: a tight updater loop pushes insert+delete batches through the
service at several ``delta_threshold`` settings (0 = merge every
commit, the legacy path) while a query loop keeps serving.  Each
frontier point reports sustained ingest rate (elements per second of
commit wall time), p50/p95 commit latency and p50/p95 query latency
during the stream — the ingest-rate vs. query-latency frontier the
delta layer buys.  Exactness is gated twice per point: mid-stream with
a non-empty delta attached (``served_results_exact_with_delta``) and
after :meth:`~repro.query.service.QueryService.flush_delta` drained
everything into pages (``served_results_exact_after_storm``).  The
top-threshold point's ingest rate is gated at ``--ingest-gate``
elements/s (default 25 000; pass 0 to disable, e.g. on shared CI).

Run ``python benchmarks/bench_updates.py`` to print a summary and emit
``BENCH_updates.json`` (the update-trajectory artifact tracked across
PRs).
"""

from __future__ import annotations

import tempfile
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from bench_common import describe_workload, finish, workload_parser
from repro.core import (
    FLATIndex,
    ShardedFLATIndex,
    restore_index,
    snapshot_index,
)
from repro.data.microcircuit import build_microcircuit
from repro.geometry.intersect import boxes_intersect_box
from repro.query import (
    MODE_PROCESS,
    BenchmarkSpec,
    QueryService,
    SCALED_SN_FRACTION,
)
from repro.storage import PageStore

#: Default workload: the SN benchmark's fixed-volume boxes over a
#: microcircuit, sized for stable numbers in a few seconds.
N_ELEMENTS = 20_000
VOLUME_SIDE = 15.0
QUERY_COUNT = 60
SEED = 13
SHARD_COUNT = 4
WORKERS = 4
UPDATE_BATCHES = 8
BATCH_INSERTS = 400
BATCH_DELETES = 400
#: Sustained-stream defaults: steady-state churn (inserts == deletes,
#: stable index size — merge cost scales with the live index, so a
#: growth stream measures index growth, not the write path) with
#: enough batches to cross several merge boundaries at the top
#: threshold.  The query loop serves a paced background load (one
#: batch every ``STREAM_QUERY_PAUSE`` seconds) rather than saturating
#: every core, so the frontier measures the write path under serving,
#: not CPU starvation on small hosts.
STREAM_BATCHES = 24
STREAM_INSERTS = 1500
STREAM_DELETES = 1500
STREAM_QUERY_PAUSE = 0.5
FRONTIER_THRESHOLDS = (0, 4000, 16000)
INGEST_GATE = 25_000.0


def _phase_stats(name: str, reports: list) -> dict:
    queries = sum(r.query_count for r in reports)
    wall = sum(r.wall_seconds for r in reports)
    reads = sum(r.total_page_reads for r in reports)
    return {
        "phase": name,
        "query_count": queries,
        "wall_seconds": wall,
        "throughput_qps": queries / wall if wall > 0 else float("nan"),
        "mean_latency_ms": 1000.0 * wall / queries if queries else float("nan"),
        "page_reads_per_query": reads / queries if queries else float("nan"),
    }


def run_updates_bench(
    n_elements: int = N_ELEMENTS,
    volume_side: float = VOLUME_SIDE,
    query_count: int = QUERY_COUNT,
    seed: int = SEED,
    shard_count: int = SHARD_COUNT,
    workers: int = WORKERS,
    update_batches: int = UPDATE_BATCHES,
    batch_inserts: int = BATCH_INSERTS,
    batch_deletes: int = BATCH_DELETES,
) -> dict:
    """Serve queries before/during/after an update storm; return the report."""
    circuit = build_microcircuit(n_elements, side=volume_side, seed=seed)
    mbrs = circuit.mbrs()
    index = ShardedFLATIndex.build(
        mbrs, shard_count=shard_count, space_mbr=circuit.space_mbr
    )
    spec = BenchmarkSpec("SN", SCALED_SN_FRACTION, query_count)
    queries = spec.queries(circuit.space_mbr, seed=seed + 404)

    live = {i: mbrs[i] for i in range(len(mbrs))}
    rng = np.random.default_rng(seed + 1)
    commits: list = []

    def one_batch(service: QueryService) -> None:
        lo = rng.uniform(circuit.space_mbr[:3], circuit.space_mbr[3:],
                         size=(batch_inserts, 3))
        inserts = np.concatenate(
            [lo, lo + rng.uniform(0.01, 0.5, size=(batch_inserts, 3))], axis=1
        )
        deletable = np.fromiter(live, dtype=np.int64, count=len(live))
        deletes = rng.choice(deletable, size=min(batch_deletes, len(deletable)),
                             replace=False)
        report = service.apply_updates(inserts=inserts, delete_ids=deletes)
        for gid, mbr in zip(report.inserted_ids, inserts):
            live[int(gid)] = mbr
        for gid in deletes:
            del live[int(gid)]
        commits.append(report)

    with QueryService(index, workers=workers) as service:
        before = [service.run(queries, "before") for _ in range(2)]

        storm_done = threading.Event()

        def storm() -> None:
            try:
                for _ in range(update_batches):
                    one_batch(service)
            finally:
                storm_done.set()

        during: list = []
        updater = threading.Thread(target=storm, name="updater")
        updater.start()
        while not storm_done.is_set():
            during.append(service.run(queries, "during"))
        updater.join()

        after = [service.run(queries, "after") for _ in range(2)]
        final_version = service.current_version

        # Exactness gate: the served results on the final generation
        # must match a brute-force scan of the tracked element set.
        ids = np.fromiter(sorted(live), dtype=np.int64, count=len(live))
        boxes = np.stack([live[int(i)] for i in ids])
        exact = all(
            np.array_equal(
                service.submit(query).result(),
                ids[boxes_intersect_box(boxes, query)],
            )
            for query in queries
        )

    updated = sum(c.update_count for c in commits)
    commit_wall = sum(c.wall_seconds for c in commits)
    phases = [
        _phase_stats("before", before),
        _phase_stats("during", during),
        _phase_stats("after", after),
    ]
    return {
        "benchmark": "updates",
        "workload": {
            "benchmark": "SN",
            "n_elements": n_elements,
            "volume_side": volume_side,
            "volume_fraction": SCALED_SN_FRACTION,
            "query_count": query_count,
            "seed": seed,
            "shard_count": shard_count,
            "workers": workers,
            "update_batches": update_batches,
            "batch_inserts": batch_inserts,
            "batch_deletes": batch_deletes,
        },
        "phases": phases,
        "updates": {
            "commits": len(commits),
            "elements_applied": updated,
            "throughput_eps": updated / commit_wall if commit_wall > 0 else 0.0,
            "mean_commit_seconds": commit_wall / len(commits) if commits else 0.0,
            "final_version": final_version,
            "final_element_count": len(live),
        },
        "checks": {
            "served_results_exact_after_storm": exact,
            "all_commits_published": final_version == update_batches,
            "update_throughput_positive": updated > 0 and commit_wall > 0,
            "query_throughput_positive": all(
                p["throughput_qps"] > 0 for p in phases
            ),
            "queries_served_during_storm": phases[1]["query_count"] > 0,
        },
    }


# -- the sustained-stream frontier ---------------------------------------


def _latency_ms(samples, points=(50, 95)) -> dict:
    """p50/p95 of a latency sample list, in milliseconds."""
    if not len(samples):
        return {}
    values = np.percentile(np.asarray(samples) * 1000.0, points)
    return {f"p{p}": float(v) for p, v in zip(points, values)}


@contextmanager
def _restored_snapshot(index, directory: Path):
    """Snapshot *index* into *directory* and yield the restored engine."""
    snapshot_index(index, directory)
    restored = restore_index(directory)
    try:
        yield restored
    finally:
        restored.store.close()


def _served_exact(service: QueryService, live: dict, queries) -> bool:
    ids = np.fromiter(sorted(live), dtype=np.int64, count=len(live))
    boxes = np.stack([live[int(i)] for i in ids])
    return all(
        np.array_equal(
            service.submit(query).result(),
            ids[boxes_intersect_box(boxes, query)],
        )
        for query in queries
    )


def _stream_point(
    circuit,
    mbrs: np.ndarray,
    queries: np.ndarray,
    workers: int,
    delta_threshold: int,
    stream_batches: int,
    batch_inserts: int,
    batch_deletes: int,
    seed: int,
    query_pause: float = STREAM_QUERY_PAUSE,
) -> dict:
    """One frontier point: a tight update stream at one delta threshold.

    The stream serves in **process mode** over a restored snapshot:
    query CPU lives in worker processes, so the measured ingest rate is
    the write path's own cost (absorb + merge + publish), not a
    GIL-starvation artifact of the query load — the same reason the
    serving benchmark runs its scaling sweep across processes.  Each
    absorbed commit ships ``(directory, generation, pickled delta)`` to
    the workers; each merge publishes the next on-disk generation.
    Warm worker caches (the sustained-serving regime, not the paper's
    cold-accounting one) keep the background load realistic.
    """
    index = FLATIndex.build(PageStore(), mbrs, space_mbr=circuit.space_mbr)
    live = {i: mbrs[i] for i in range(len(mbrs))}
    rng = np.random.default_rng(seed)
    commits: list = []
    stream_done = threading.Event()
    stream_wall = [0.0]

    def fresh_inserts(count: int) -> np.ndarray:
        lo = rng.uniform(
            circuit.space_mbr[:3], circuit.space_mbr[3:], size=(count, 3)
        )
        return np.concatenate(
            [lo, lo + rng.uniform(0.01, 0.5, size=(count, 3))], axis=1
        )

    with tempfile.TemporaryDirectory(prefix="bench-updates-") as tmp, \
            _restored_snapshot(index, Path(tmp) / "gen") as restored, \
            QueryService(
                restored, workers=workers, mode=MODE_PROCESS,
                clear_cache_per_query=False,
                delta_threshold=delta_threshold,
            ) as service:

        def stream() -> None:
            t0 = time.perf_counter()
            try:
                for _ in range(stream_batches):
                    inserts = fresh_inserts(batch_inserts)
                    pool = np.fromiter(live, dtype=np.int64, count=len(live))
                    deletes = rng.choice(
                        pool, size=min(batch_deletes, len(pool)), replace=False
                    )
                    report = service.apply_updates(
                        inserts=inserts, delete_ids=deletes
                    )
                    for gid, mbr in zip(report.inserted_ids, inserts):
                        live[int(gid)] = mbr
                    for gid in deletes:
                        del live[int(gid)]
                    commits.append(report)
            finally:
                stream_wall[0] = time.perf_counter() - t0
                stream_done.set()

        # The paced background load serves a slice of the workload per
        # cycle; on small hosts a saturating query loop would only
        # measure CPU starvation, not the write path.  Exactness checks
        # below still use the full query set.
        stream_queries = queries[: min(len(queries), 20)]
        during: list = []
        updater = threading.Thread(target=stream, name="stream-updater")
        updater.start()
        while not stream_done.is_set():
            during.append(service.run(stream_queries, "stream"))
            if query_pause > 0:
                stream_done.wait(query_pause)
        updater.join()

        # Mid-stream bar: served answers must be exact *while a delta
        # is attached*.  If the stream happened to end right on a merge
        # boundary, absorb one small batch (outside the ingest
        # accounting) so the check genuinely exercises the overlay.
        exact_with_delta = True
        if delta_threshold > 0:
            if service.delta_size == 0:
                pad = fresh_inserts(50)
                pad_report = service.apply_updates(inserts=pad)
                for gid, mbr in zip(pad_report.inserted_ids, pad):
                    live[int(gid)] = mbr
            exact_with_delta = (
                service.delta_size > 0 and _served_exact(service, live, queries)
            )
        # Post-flush bar: a forced generation boundary drains the delta
        # into pages and the answers must not move.
        service.flush_delta()
        exact_after = service.delta_size == 0 and _served_exact(
            service, live, queries
        )

    applied = sum(c.update_count for c in commits)
    commit_wall = sum(c.wall_seconds for c in commits)
    merges = sum(1 for c in commits if c.merged)
    return {
        "delta_threshold": delta_threshold,
        "commits": len(commits),
        "merges": merges,
        "absorbed_commits": len(commits) - merges,
        "elements_applied": applied,
        "ingest_eps": applied / commit_wall if commit_wall > 0 else 0.0,
        "commit_wall_seconds": commit_wall,
        "stream_wall_seconds": stream_wall[0],
        "commit_latency_ms": _latency_ms([c.wall_seconds for c in commits]),
        "query_latency_ms": _latency_ms(
            [lat for r in during for lat in r.latencies_seconds]
        ),
        "queries_served_during_stream": sum(r.query_count for r in during),
        "final_element_count": len(live),
        "served_results_exact_with_delta": exact_with_delta,
        "served_results_exact_after_storm": exact_after,
    }


def run_sustained_stream(
    n_elements: int = N_ELEMENTS,
    volume_side: float = VOLUME_SIDE,
    query_count: int = QUERY_COUNT,
    seed: int = SEED,
    workers: int = WORKERS,
    stream_batches: int = STREAM_BATCHES,
    batch_inserts: int = STREAM_INSERTS,
    batch_deletes: int = STREAM_DELETES,
    thresholds=FRONTIER_THRESHOLDS,
    ingest_gate: float = INGEST_GATE,
    query_pause: float = STREAM_QUERY_PAUSE,
) -> dict:
    """The ingest-rate vs. query-latency frontier across delta thresholds."""
    circuit = build_microcircuit(n_elements, side=volume_side, seed=seed)
    mbrs = circuit.mbrs()
    spec = BenchmarkSpec("SN", SCALED_SN_FRACTION, query_count)
    queries = spec.queries(circuit.space_mbr, seed=seed + 808)
    points = [
        _stream_point(
            circuit, mbrs, queries, workers, int(threshold),
            stream_batches, batch_inserts, batch_deletes, seed + 31 * pos,
            query_pause,
        )
        for pos, threshold in enumerate(thresholds)
    ]
    gated = points[-1]
    return {
        "frontier": points,
        "ingest_gate_eps": ingest_gate,
        "gated_threshold": gated["delta_threshold"],
        "gated_ingest_eps": gated["ingest_eps"],
    }


def main(argv=None) -> int:
    parser = workload_parser(
        __doc__.splitlines()[0],
        elements=N_ELEMENTS,
        side=VOLUME_SIDE,
        queries=QUERY_COUNT,
        seed=SEED,
        out="BENCH_updates.json",
    )
    parser.add_argument("--shards", type=int, default=SHARD_COUNT)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--update-batches", type=int, default=UPDATE_BATCHES)
    parser.add_argument("--batch-inserts", type=int, default=BATCH_INSERTS)
    parser.add_argument("--batch-deletes", type=int, default=BATCH_DELETES)
    parser.add_argument("--stream-batches", type=int, default=STREAM_BATCHES)
    parser.add_argument("--stream-inserts", type=int, default=STREAM_INSERTS)
    parser.add_argument("--stream-deletes", type=int, default=STREAM_DELETES)
    parser.add_argument(
        "--thresholds", type=int, nargs="+",
        default=list(FRONTIER_THRESHOLDS),
        help="delta_threshold frontier points; the last one is gated",
    )
    parser.add_argument(
        "--ingest-gate", type=float, default=INGEST_GATE,
        help="minimum sustained ingest (elements/s) at the last "
             "threshold; 0 disables the gate",
    )
    parser.add_argument(
        "--stream-query-pause", type=float, default=STREAM_QUERY_PAUSE,
        help="pause between query batches during the stream (a paced "
             "background serving load; 0 saturates the pool)",
    )
    args = parser.parse_args(argv)
    report = run_updates_bench(
        args.elements,
        args.side,
        args.queries,
        args.seed,
        args.shards,
        args.workers,
        args.update_batches,
        args.batch_inserts,
        args.batch_deletes,
    )
    sustained = run_sustained_stream(
        args.elements,
        args.side,
        args.queries,
        args.seed,
        args.workers,
        args.stream_batches,
        args.stream_inserts,
        args.stream_deletes,
        args.thresholds,
        args.ingest_gate,
        args.stream_query_pause,
    )
    report["sustained"] = sustained
    points = sustained["frontier"]
    report["checks"].update(
        {
            "sustained_exact_with_delta": all(
                p["served_results_exact_with_delta"] for p in points
            ),
            "sustained_exact_after_flush": all(
                p["served_results_exact_after_storm"] for p in points
            ),
            "sustained_ingest_meets_gate": (
                args.ingest_gate <= 0
                or sustained["gated_ingest_eps"] >= args.ingest_gate
            ),
            "delta_layer_absorbs_commits": any(
                p["absorbed_commits"] > 0
                for p in points
                if p["delta_threshold"] > 0
            ),
        }
    )

    print(describe_workload(report))
    for phase in report["phases"]:
        print(
            f"  {phase['phase']:6s}: {phase['throughput_qps']:8.1f} q/s, "
            f"{phase['mean_latency_ms']:6.2f} ms/query, "
            f"{phase['page_reads_per_query']:7.1f} page reads/query"
        )
    updates = report["updates"]
    print(
        f"  storm : {updates['throughput_eps']:8.1f} elements/s over "
        f"{updates['commits']} commits "
        f"({updates['mean_commit_seconds'] * 1000:.1f} ms/commit), "
        f"final generation {updates['final_version']}"
    )
    print("sustained stream (ingest vs. latency frontier):")
    for point in points:
        commit_p50 = point["commit_latency_ms"].get("p50", float("nan"))
        commit_p95 = point["commit_latency_ms"].get("p95", float("nan"))
        query_p50 = point["query_latency_ms"].get("p50", float("nan"))
        query_p95 = point["query_latency_ms"].get("p95", float("nan"))
        print(
            f"  threshold={point['delta_threshold']:<6d} "
            f"{point['ingest_eps']:9.0f} el/s  "
            f"commit p50={commit_p50:7.1f}ms p95={commit_p95:7.1f}ms  "
            f"query p50={query_p50:6.1f}ms p95={query_p95:6.1f}ms  "
            f"({point['absorbed_commits']}/{point['commits']} absorbed, "
            f"{point['merges']} merges)"
        )
    return finish(report, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
