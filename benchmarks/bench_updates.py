"""Micro-benchmark: query latency under snapshot-isolated update storms.

Builds a sharded FLAT index over one microcircuit density step and
serves the SN range workload through
:class:`~repro.query.service.QueryService` in three phases:

* **before** — steady-state serving, no writers;
* **during** — an updater thread applies insert+delete batches through
  :meth:`~repro.query.service.QueryService.apply_updates` (each commit
  forks the current generation copy-on-write and atomically swaps it
  in) while the query loop keeps serving;
* **after** — steady-state serving on the final generation.

Reported per phase: query throughput, mean latency and page reads per
query; for the storm itself: update throughput (elements applied per
second) and per-commit wall time.  The correctness gate re-checks a
sample of the served queries against a brute-force scan of the final
element set — served results must be exact after any number of commits.

Run ``python benchmarks/bench_updates.py`` to print a summary and emit
``BENCH_updates.json`` (the update-trajectory artifact tracked across
PRs).
"""

from __future__ import annotations

import threading

import numpy as np

from bench_common import describe_workload, finish, workload_parser
from repro.core import ShardedFLATIndex
from repro.data.microcircuit import build_microcircuit
from repro.geometry.intersect import boxes_intersect_box
from repro.query import BenchmarkSpec, QueryService, SCALED_SN_FRACTION

#: Default workload: the SN benchmark's fixed-volume boxes over a
#: microcircuit, sized for stable numbers in a few seconds.
N_ELEMENTS = 20_000
VOLUME_SIDE = 15.0
QUERY_COUNT = 60
SEED = 13
SHARD_COUNT = 4
WORKERS = 4
UPDATE_BATCHES = 8
BATCH_INSERTS = 400
BATCH_DELETES = 400


def _phase_stats(name: str, reports: list) -> dict:
    queries = sum(r.query_count for r in reports)
    wall = sum(r.wall_seconds for r in reports)
    reads = sum(r.total_page_reads for r in reports)
    return {
        "phase": name,
        "query_count": queries,
        "wall_seconds": wall,
        "throughput_qps": queries / wall if wall > 0 else float("nan"),
        "mean_latency_ms": 1000.0 * wall / queries if queries else float("nan"),
        "page_reads_per_query": reads / queries if queries else float("nan"),
    }


def run_updates_bench(
    n_elements: int = N_ELEMENTS,
    volume_side: float = VOLUME_SIDE,
    query_count: int = QUERY_COUNT,
    seed: int = SEED,
    shard_count: int = SHARD_COUNT,
    workers: int = WORKERS,
    update_batches: int = UPDATE_BATCHES,
    batch_inserts: int = BATCH_INSERTS,
    batch_deletes: int = BATCH_DELETES,
) -> dict:
    """Serve queries before/during/after an update storm; return the report."""
    circuit = build_microcircuit(n_elements, side=volume_side, seed=seed)
    mbrs = circuit.mbrs()
    index = ShardedFLATIndex.build(
        mbrs, shard_count=shard_count, space_mbr=circuit.space_mbr
    )
    spec = BenchmarkSpec("SN", SCALED_SN_FRACTION, query_count)
    queries = spec.queries(circuit.space_mbr, seed=seed + 404)

    live = {i: mbrs[i] for i in range(len(mbrs))}
    rng = np.random.default_rng(seed + 1)
    commits: list = []

    def one_batch(service: QueryService) -> None:
        lo = rng.uniform(circuit.space_mbr[:3], circuit.space_mbr[3:],
                         size=(batch_inserts, 3))
        inserts = np.concatenate(
            [lo, lo + rng.uniform(0.01, 0.5, size=(batch_inserts, 3))], axis=1
        )
        deletable = np.fromiter(live, dtype=np.int64, count=len(live))
        deletes = rng.choice(deletable, size=min(batch_deletes, len(deletable)),
                             replace=False)
        report = service.apply_updates(inserts=inserts, delete_ids=deletes)
        for gid, mbr in zip(report.inserted_ids, inserts):
            live[int(gid)] = mbr
        for gid in deletes:
            del live[int(gid)]
        commits.append(report)

    with QueryService(index, workers=workers) as service:
        before = [service.run(queries, "before") for _ in range(2)]

        storm_done = threading.Event()

        def storm() -> None:
            try:
                for _ in range(update_batches):
                    one_batch(service)
            finally:
                storm_done.set()

        during: list = []
        updater = threading.Thread(target=storm, name="updater")
        updater.start()
        while not storm_done.is_set():
            during.append(service.run(queries, "during"))
        updater.join()

        after = [service.run(queries, "after") for _ in range(2)]
        final_version = service.current_version

        # Exactness gate: the served results on the final generation
        # must match a brute-force scan of the tracked element set.
        ids = np.fromiter(sorted(live), dtype=np.int64, count=len(live))
        boxes = np.stack([live[int(i)] for i in ids])
        exact = all(
            np.array_equal(
                service.submit(query).result(),
                ids[boxes_intersect_box(boxes, query)],
            )
            for query in queries
        )

    updated = sum(c.update_count for c in commits)
    commit_wall = sum(c.wall_seconds for c in commits)
    phases = [
        _phase_stats("before", before),
        _phase_stats("during", during),
        _phase_stats("after", after),
    ]
    return {
        "benchmark": "updates",
        "workload": {
            "benchmark": "SN",
            "n_elements": n_elements,
            "volume_side": volume_side,
            "volume_fraction": SCALED_SN_FRACTION,
            "query_count": query_count,
            "seed": seed,
            "shard_count": shard_count,
            "workers": workers,
            "update_batches": update_batches,
            "batch_inserts": batch_inserts,
            "batch_deletes": batch_deletes,
        },
        "phases": phases,
        "updates": {
            "commits": len(commits),
            "elements_applied": updated,
            "throughput_eps": updated / commit_wall if commit_wall > 0 else 0.0,
            "mean_commit_seconds": commit_wall / len(commits) if commits else 0.0,
            "final_version": final_version,
            "final_element_count": len(live),
        },
        "checks": {
            "served_results_exact_after_storm": exact,
            "all_commits_published": final_version == update_batches,
            "update_throughput_positive": updated > 0 and commit_wall > 0,
            "query_throughput_positive": all(
                p["throughput_qps"] > 0 for p in phases
            ),
            "queries_served_during_storm": phases[1]["query_count"] > 0,
        },
    }


def main(argv=None) -> int:
    parser = workload_parser(
        __doc__.splitlines()[0],
        elements=N_ELEMENTS,
        side=VOLUME_SIDE,
        queries=QUERY_COUNT,
        seed=SEED,
        out="BENCH_updates.json",
    )
    parser.add_argument("--shards", type=int, default=SHARD_COUNT)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--update-batches", type=int, default=UPDATE_BATCHES)
    parser.add_argument("--batch-inserts", type=int, default=BATCH_INSERTS)
    parser.add_argument("--batch-deletes", type=int, default=BATCH_DELETES)
    args = parser.parse_args(argv)
    report = run_updates_bench(
        args.elements,
        args.side,
        args.queries,
        args.seed,
        args.shards,
        args.workers,
        args.update_batches,
        args.batch_inserts,
        args.batch_deletes,
    )

    print(describe_workload(report))
    for phase in report["phases"]:
        print(
            f"  {phase['phase']:6s}: {phase['throughput_qps']:8.1f} q/s, "
            f"{phase['mean_latency_ms']:6.2f} ms/query, "
            f"{phase['page_reads_per_query']:7.1f} page reads/query"
        )
    updates = report["updates"]
    print(
        f"  storm : {updates['throughput_eps']:8.1f} elements/s over "
        f"{updates['commits']} commits "
        f"({updates['mean_commit_seconds'] * 1000:.1f} ms/commit), "
        f"final generation {updates['final_version']}"
    )
    return finish(report, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
