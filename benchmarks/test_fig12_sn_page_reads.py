"""Fig. 12: SN total page reads, FLAT vs the R-Trees (see DESIGN.md §4)."""

from repro.experiments import fig12_sn_page_reads as experiment

from conftest import run_figure


def test_fig12(benchmark, config):
    run_figure(benchmark, experiment.run, config)
