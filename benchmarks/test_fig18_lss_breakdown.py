"""Fig. 18: LSS retrieved-data breakdown, FLAT vs PR-Tree (see DESIGN.md §4)."""

from repro.experiments import fig18_lss_breakdown as experiment

from conftest import run_figure


def test_fig18(benchmark, config):
    run_figure(benchmark, experiment.run, config)
