"""Fig. 14: SN retrieved-data breakdown, FLAT vs PR-Tree (see DESIGN.md §4)."""

from repro.experiments import fig14_sn_breakdown as experiment

from conftest import run_figure


def test_fig14(benchmark, config):
    run_figure(benchmark, experiment.run, config)
