"""Sec. VII-E text experiments: element volume and aspect-ratio effects
on FLAT's neighbor pointer counts (see DESIGN.md §4)."""

from repro.experiments import sec7e_element_effects as experiment

from conftest import run_figure


def test_sec7e_element_volume(benchmark, config):
    run_figure(benchmark, experiment.run_element_volume, config)


def test_sec7e_aspect_ratio(benchmark, config):
    run_figure(benchmark, experiment.run_aspect_ratio, config)
