"""Fig. 2: point-query overlap probe on the R-Tree variants (see DESIGN.md §4)."""

from repro.experiments import fig02_point_overlap as experiment

from conftest import run_figure


def test_fig02(benchmark, config):
    run_figure(benchmark, experiment.run, config)
