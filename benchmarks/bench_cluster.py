"""Micro-benchmark: the distributed serving tier vs the in-process oracle.

Snapshots the SN microcircuit workload into sharded roots and serves it
through :class:`~repro.query.cluster.ClusterRouter` fleets of increasing
size, measuring aggregate cold-cache throughput per server count.  Every
configuration is pinned element-id-identical to the in-RAM
:class:`~repro.core.sharded.ShardedFLATIndex` oracle.  Two fault drills
run on a replicated fleet:

* **failover** — kill a primary mid-workload; the batch must finish on
  the replica with byte-identical results and exactly one server lost;
* **rolling update** — apply an insert/delete batch shard-by-shard while
  querying; after every shard swap the answers must match the mixed
  old/new-generation oracle, and post-roll the fork oracle — with every
  replica ship incremental (changed pages only, never a full copy).

Exactness checks always gate the exit code.  The throughput-scaling
check can be disabled with ``--scaling-gate 0`` for shared CI runners
where wall-clock scaling is unreliable (the measurements are still
recorded in the artifact).

Run ``python benchmarks/bench_cluster.py`` to print a summary and emit
``BENCH_cluster.json``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from bench_common import describe_workload, finish, workload_parser
from repro.core import ShardedFLATIndex
from repro.data.microcircuit import build_microcircuit
from repro.query import BenchmarkSpec, ClusterRouter, SCALED_SN_FRACTION, random_points

N_ELEMENTS = 20_000
VOLUME_SIDE = 15.0
QUERY_COUNT = 60
SEED = 7
SERVER_COUNTS = (1, 2, 4)
KNN_QUERY_COUNT = 10
KNN_K = 10
UPDATE_INSERTS = 200
UPDATE_DELETES = 100
MID_ROLL_QUERIES = 12


def _random_inserts(space_mbr, count, seed):
    rng = np.random.default_rng(seed)
    lo = rng.uniform(space_mbr[:3], space_mbr[3:] - 1.0, size=(count, 3))
    return np.concatenate(
        [lo, lo + rng.uniform(0.01, 1.0, size=(count, 3))], axis=1
    )


def _random_deletes(oracle, count, seed):
    rng = np.random.default_rng(seed)
    live = np.flatnonzero(
        oracle.contains_elements(np.arange(oracle.next_element_id))
    )
    return rng.choice(live, size=min(count, len(live)), replace=False).astype(
        np.int64
    )


def _exact(results, oracle, queries) -> bool:
    return all(
        np.array_equal(got, oracle.range_query(query))
        for got, query in zip(results, queries)
    )


def _serve_sweep(workdir, mbrs, space_mbr, queries, knn_points, knn_k,
                 server_counts) -> tuple:
    """One cluster per server count: cold q/s plus oracle exactness."""
    runs = []
    exact = True
    knn_exact = True
    for target in server_counts:
        oracle = ShardedFLATIndex.build(mbrs, target, space_mbr=space_mbr)
        root = Path(workdir) / f"sweep-{target}"
        oracle.snapshot(root)
        with ClusterRouter.launch(root) as router:
            results, report = router.run(queries)
            exact &= _exact(results, oracle, queries)
            knn_exact &= all(
                np.array_equal(
                    router.knn_query(point, knn_k),
                    oracle.knn_query(point, knn_k),
                )
                for point in knn_points
            )
            runs.append(
                {
                    "target_servers": target,
                    "actual_servers": router.shard_count,
                    "cold_qps": report.throughput_qps,
                    "wall_seconds": report.wall_seconds,
                    "total_page_reads": report.total_page_reads,
                    "shard_requests": report.shard_requests,
                    "shards_pruned": report.shards_pruned,
                    "result_elements": report.result_elements,
                }
            )
    return runs, exact, knn_exact


def _failover_drill(workdir, mbrs, space_mbr, queries, server_count) -> dict:
    """Kill a primary mid-workload; the replica must finish it exactly."""
    oracle = ShardedFLATIndex.build(mbrs, server_count, space_mbr=space_mbr)
    root = Path(workdir) / "failover"
    oracle.snapshot(root)
    with ClusterRouter.launch(
        root, replica_root=Path(workdir) / "failover-replicas"
    ) as router:
        warm_results, _ = router.run(queries)
        router.kill_server(0, "primary")
        results, report = router.run(queries)
        return {
            "server_count": router.shard_count,
            "pre_kill_exact": _exact(warm_results, oracle, queries),
            "post_kill_exact": _exact(results, oracle, queries),
            "servers_lost": report.servers_lost,
            "post_kill_qps": report.throughput_qps,
            "launch_full_copies": sum(
                1 for entry in router.replication_log if entry["full_copy"]
            ),
            # The launch ships' transfer accounting (ShipStats.as_dict()):
            # what replication actually paid in bytes on the wire.
            "launch_replication": router.replication_log,
            "launch_bytes_sent": sum(
                entry["bytes_sent"] + entry["index_bytes_sent"]
                for entry in router.replication_log
            ),
        }


def _rolling_update_drill(workdir, mbrs, space_mbr, queries, server_count,
                          insert_count, delete_count, seed) -> dict:
    """Roll an update across the fleet while querying; pin every step."""
    oracle = ShardedFLATIndex.build(mbrs, server_count, space_mbr=space_mbr)
    root = Path(workdir) / "roll"
    oracle.snapshot(root)
    inserts = _random_inserts(space_mbr, insert_count, seed + 808)
    deletes = _random_deletes(oracle, delete_count, seed + 909)
    new_oracle = oracle.fork()
    new_oracle.apply_batch(insert_mbrs=inserts, delete_ids=deletes)
    mid_queries = queries[:MID_ROLL_QUERIES]
    mid_exact = True
    done = []

    with ClusterRouter.launch(
        root, replica_root=Path(workdir) / "roll-replicas"
    ) as router:

        def on_shard(pos, generation):
            nonlocal mid_exact
            done.append(pos)
            mixed = ShardedFLATIndex(
                [new_oracle.shards[i] if i in done else oracle.shards[i]
                 for i in range(oracle.shard_count)],
                new_oracle.planner,
                new_oracle.element_count,
            )
            for query in mid_queries:
                mid_exact &= np.array_equal(
                    router.range_query(query), mixed.range_query(query)
                )

        report = router.apply_updates(
            insert_mbrs=inserts, delete_ids=deletes, on_shard_updated=on_shard
        )
        results, _ = router.run(queries)
        return {
            "server_count": router.shard_count,
            "shards_rolled": len(report.shards_updated),
            "inserts": int(len(report.inserted_ids)),
            "deletes": int(report.deleted_count),
            "roll_wall_seconds": report.wall_seconds,
            "mid_roll_exact": mid_exact,
            "post_roll_exact": _exact(results, new_oracle, queries),
            "shipping": report.shipping,
            "ship_bytes_sent": sum(
                entry["bytes_sent"] + entry["index_bytes_sent"]
                for entry in report.shipping
            ),
            "incremental_ships": all(
                not entry["full_copy"] for entry in report.shipping
            ),
        }


def run_cluster_bench(
    n_elements: int = N_ELEMENTS,
    volume_side: float = VOLUME_SIDE,
    query_count: int = QUERY_COUNT,
    seed: int = SEED,
    server_counts=SERVER_COUNTS,
    knn_query_count: int = KNN_QUERY_COUNT,
    knn_k: int = KNN_K,
    update_inserts: int = UPDATE_INSERTS,
    update_deletes: int = UPDATE_DELETES,
    scaling_gate: bool = True,
) -> dict:
    """Sweep fleet sizes and run both fault drills; cross-check all of it."""
    circuit = build_microcircuit(n_elements, side=volume_side, seed=seed)
    mbrs = circuit.mbrs()
    spec = BenchmarkSpec("SN", SCALED_SN_FRACTION, query_count)
    queries = spec.queries(circuit.space_mbr, seed=seed + 202)
    knn_points = random_points(circuit.space_mbr, knn_query_count,
                               seed=seed + 404)
    drill_servers = max(server_counts)

    with tempfile.TemporaryDirectory(prefix="flatbench-") as workdir:
        sweep, sweep_exact, knn_exact = _serve_sweep(
            workdir, mbrs, circuit.space_mbr, queries, knn_points, knn_k,
            server_counts,
        )
        failover = _failover_drill(
            workdir, mbrs, circuit.space_mbr, queries, drill_servers
        )
        roll = _rolling_update_drill(
            workdir, mbrs, circuit.space_mbr, queries, drill_servers,
            update_inserts, update_deletes, seed,
        )

    qps = {run["actual_servers"]: run["cold_qps"] for run in sweep}
    scaling = (
        len(qps) < 2
        or qps[max(qps)] > qps[min(qps)]
    )
    checks = {
        "cluster_results_match_oracle": bool(sweep_exact),
        "cluster_knn_matches_oracle": bool(knn_exact),
        "post_kill_results_exact": bool(
            failover["pre_kill_exact"] and failover["post_kill_exact"]
        ),
        "failover_lost_exactly_one_server": failover["servers_lost"] == 1,
        "mid_roll_results_exact": bool(roll["mid_roll_exact"]),
        "post_roll_results_exact": bool(roll["post_roll_exact"]),
        "replication_ships_increments_only": bool(roll["incremental_ships"]),
    }
    if scaling_gate:
        checks["aggregate_qps_scales_with_servers"] = bool(scaling)

    return {
        "benchmark": "cluster",
        "workload": {
            "figure": "fig13",
            "benchmark": "SN",
            "n_elements": n_elements,
            "volume_side": volume_side,
            "volume_fraction": SCALED_SN_FRACTION,
            "query_count": query_count,
            "knn_query_count": knn_query_count,
            "knn_k": knn_k,
            "update_inserts": update_inserts,
            "update_deletes": update_deletes,
            "seed": seed,
        },
        "serve_sweep": sweep,
        "failover": failover,
        "rolling_update": roll,
        "qps_scaling_observed": bool(scaling),
        "checks": checks,
    }


def main(argv=None) -> int:
    parser = workload_parser(
        __doc__.splitlines()[0],
        elements=N_ELEMENTS,
        side=VOLUME_SIDE,
        queries=QUERY_COUNT,
        seed=SEED,
        out="BENCH_cluster.json",
    )
    parser.add_argument(
        "--servers", type=int, nargs="+", default=list(SERVER_COUNTS),
        help="shard-server counts to sweep",
    )
    parser.add_argument("--knn-queries", type=int, default=KNN_QUERY_COUNT)
    parser.add_argument("--knn-k", type=int, default=KNN_K)
    parser.add_argument("--update-inserts", type=int, default=UPDATE_INSERTS)
    parser.add_argument("--update-deletes", type=int, default=UPDATE_DELETES)
    parser.add_argument(
        "--scaling-gate", type=int, default=1,
        help="gate the exit code on q/s scaling with server count "
             "(pass 0 on shared CI runners; exactness is always gated)",
    )
    args = parser.parse_args(argv)
    report = run_cluster_bench(
        args.elements,
        args.side,
        args.queries,
        args.seed,
        tuple(args.servers),
        args.knn_queries,
        args.knn_k,
        args.update_inserts,
        args.update_deletes,
        scaling_gate=bool(args.scaling_gate),
    )

    print(describe_workload(report))
    for run in report["serve_sweep"]:
        print(f"  servers={run['actual_servers']}: "
              f"cold {run['cold_qps']:8.1f} q/s "
              f"({run['shard_requests']} requests, "
              f"{run['shards_pruned']} pruned, "
              f"{run['total_page_reads']} page reads)")
    failover = report["failover"]
    print(f"failover: post-kill {failover['post_kill_qps']:8.1f} q/s, "
          f"exact={failover['post_kill_exact']}, "
          f"lost={failover['servers_lost']}; launch replication "
          f"{failover['launch_full_copies']} full copies, "
          f"{failover['launch_bytes_sent']:,} bytes")
    roll = report["rolling_update"]
    sent = sum(entry["pages_sent"] for entry in roll["shipping"])
    print(f"rolling update: {roll['shards_rolled']} shards in "
          f"{roll['roll_wall_seconds']:.3f}s, mid-roll exact="
          f"{roll['mid_roll_exact']}, post-roll exact="
          f"{roll['post_roll_exact']}, {sent} pages / "
          f"{roll['ship_bytes_sent']:,} bytes shipped")
    return finish(report, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
