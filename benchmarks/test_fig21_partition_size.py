"""Fig. 21: partition volume vs neighbor pointer count (see DESIGN.md §4)."""

from repro.experiments import fig21_partition_size as experiment

from conftest import run_figure


def test_fig21(benchmark, config):
    run_figure(benchmark, experiment.run, config)
