"""The crawl-engine micro-benchmark as a regression gate.

Runs ``bench_crawl.run_crawl_bench`` on a CI-sized workload and holds
the batched engine to its two guarantees: identical behaviour to the
scalar reference crawl, and at least a 3x reduction in metadata-page
decodes on the Fig. 13 (SN) workload.
"""

import json

from bench_crawl import run_crawl_bench


def test_crawl_bench_checks_and_artifact(tmp_path):
    report = run_crawl_bench(n_elements=9_000, query_count=30)
    assert report["checks"]["identical_results"]
    assert report["checks"]["identical_page_reads"]
    assert report["metadata_decode_reduction"] >= 3.0

    # The report must round-trip as the BENCH_crawl.json artifact.
    artifact = tmp_path / "BENCH_crawl.json"
    artifact.write_text(json.dumps(report, indent=2))
    assert json.loads(artifact.read_text())["benchmark"] == "crawl-engine"
