"""Fig. 22: index size/build time on the Sec. VIII data sets (see DESIGN.md §4)."""

from repro.experiments import fig22_other_datasets_index as experiment

from conftest import run_figure


def test_fig22(benchmark, config):
    run_figure(benchmark, experiment.run, config)
