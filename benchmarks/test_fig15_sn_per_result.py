"""Fig. 15: SN page reads per result element (see DESIGN.md §4)."""

from repro.experiments import fig15_sn_per_result as experiment

from conftest import run_figure


def test_fig15(benchmark, config):
    run_figure(benchmark, experiment.run, config)
