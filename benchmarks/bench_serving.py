"""Micro-benchmark: snapshot → restore → serve (Fig. 13 SN workload).

Builds FLAT over one microcircuit density step in memory, snapshots it
to disk, reopens it over the mmap-backed file store, and serves the SN
benchmark through :class:`~repro.query.service.QueryService` at
increasing worker counts — cold caches (the paper's regime: every query
drops its worker's buffer + decoded cache) and warm (caches accumulate
across queries).  The restored index must return exactly the per-query
results and per-category page reads of the in-memory build; the
benchmark reports serving throughput on top of that equivalence.

Run ``python benchmarks/bench_serving.py`` to print a summary and emit
``BENCH_serving.json`` (the serving-trajectory artifact tracked across
PRs).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from bench_common import describe_workload, finish, workload_parser
from repro.core import FLATIndex
from repro.data.microcircuit import build_microcircuit
from repro.query import BenchmarkSpec, QueryService, SCALED_SN_FRACTION, run_queries
from repro.storage import PageStore

#: Default workload: the SN benchmark (Figs. 12/13) at reproduction
#: scale, enough queries for stable throughput numbers.
N_ELEMENTS = 25_000
VOLUME_SIDE = 15.0
QUERY_COUNT = 120
SEED = 7
WORKER_COUNTS = (1, 2, 4, 8)


def _serve(index, queries, workers: int, cold: bool) -> dict:
    with QueryService(
        index, workers=workers, clear_cache_per_query=cold
    ) as service:
        report = service.run(queries, "flat-served")
    return {
        "workers": workers,
        "cache": "cold" if cold else "warm",
        "wall_seconds": report.wall_seconds,
        "throughput_qps": report.throughput_qps,
        "total_page_reads": report.total_page_reads,
        "cache_hits": report.cache_hits,
        "workers_used": report.workers_used,
        "result_elements": report.result_elements,
        "per_query_results": report.per_query_results,
    }


def run_serving_bench(
    n_elements: int = N_ELEMENTS,
    volume_side: float = VOLUME_SIDE,
    query_count: int = QUERY_COUNT,
    seed: int = SEED,
    worker_counts=WORKER_COUNTS,
    snapshot_dir: Path | None = None,
) -> dict:
    """Build, snapshot, restore and serve; return the full comparison."""
    circuit = build_microcircuit(n_elements, side=volume_side, seed=seed)
    store = PageStore()
    flat = FLATIndex.build(store, circuit.mbrs(), space_mbr=circuit.space_mbr)
    spec = BenchmarkSpec("SN", SCALED_SN_FRACTION, query_count)
    queries = spec.queries(circuit.space_mbr, seed=seed + 202)

    built = run_queries(flat, store, queries, "flat-built")

    own_tmp = None
    if snapshot_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="flat-snapshot-")
        snapshot_dir = Path(own_tmp.name)
    try:
        flat.snapshot(snapshot_dir)
        restored = FLATIndex.restore(snapshot_dir)
        try:
            restored_run = run_queries(
                restored, restored.store, queries, "flat-restored"
            )
            runs = []
            for workers in worker_counts:
                runs.append(_serve(restored, queries, workers, cold=True))
                runs.append(_serve(restored, queries, workers, cold=False))
        finally:
            restored.store.close()
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()

    cold_single = next(
        r for r in runs if r["cache"] == "cold" and r["workers"] == worker_counts[0]
    )
    served_match = all(
        r["per_query_results"] == built.per_query_results for r in runs
    )
    for r in runs:
        del r["per_query_results"]  # bulky; equivalence is summarized in checks
    return {
        "benchmark": "serving",
        "workload": {
            "figure": "fig13",
            "benchmark": "SN",
            "n_elements": n_elements,
            "volume_side": volume_side,
            "volume_fraction": SCALED_SN_FRACTION,
            "query_count": query_count,
            "seed": seed,
        },
        "built": {
            "total_page_reads": built.total_page_reads,
            "result_elements": built.result_elements,
        },
        "restored": {
            "total_page_reads": restored_run.total_page_reads,
            "result_elements": restored_run.result_elements,
        },
        "serving": runs,
        "checks": {
            "restored_identical_results": built.per_query_results
            == restored_run.per_query_results,
            "restored_identical_page_reads": built.reads_by_category
            == restored_run.reads_by_category,
            "served_identical_results": served_match,
            "served_cold_reads_match_harness": cold_single["total_page_reads"]
            == built.total_page_reads,
            "throughput_positive": all(r["throughput_qps"] > 0 for r in runs),
        },
    }


def main(argv=None) -> int:
    parser = workload_parser(
        __doc__.splitlines()[0],
        elements=N_ELEMENTS,
        side=VOLUME_SIDE,
        queries=QUERY_COUNT,
        seed=SEED,
        out="BENCH_serving.json",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=list(WORKER_COUNTS),
        help="worker counts to sweep",
    )
    parser.add_argument(
        "--snapshot-dir", type=Path, default=None,
        help="where to write the snapshot (default: a temporary directory)",
    )
    args = parser.parse_args(argv)
    report = run_serving_bench(
        args.elements,
        args.side,
        args.queries,
        args.seed,
        tuple(args.workers),
        args.snapshot_dir,
    )

    print(describe_workload(report))
    for run in report["serving"]:
        print(f"  workers={run['workers']} {run['cache']:4s}: "
              f"{run['throughput_qps']:8.1f} q/s "
              f"({run['total_page_reads']} page reads, "
              f"{run['cache_hits']} cache hits)")
    return finish(report, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
