"""Micro-benchmark: snapshot → restore → serve (Fig. 13 SN workload).

Builds FLAT over one microcircuit density step in memory, snapshots it
to disk, reopens it over the mmap-backed file store, and serves the SN
benchmark through :class:`~repro.query.service.QueryService` across a
(mode × workers × cache) matrix — thread workers at batch 1 (the
legacy pinned path) and process workers over shared mmap pages with the
multi-query batched crawl, cold caches (the paper's regime: every query
drops its worker's buffer + decoded cache) and warm (caches accumulate
across queries).  The restored index must return exactly the per-query
results and per-category page reads of the in-memory build; every cold
run, whatever its mode or batching, must reproduce the harness's page
reads byte-exactly.  On top of that equivalence each run reports
throughput, p50/p95/p99 latency and per-worker scaling efficiency, and
the 4-process-worker cold run is gated at ≥ 2.5× the single-worker
cold baseline.

Run ``python benchmarks/bench_serving.py`` to print a summary and emit
``BENCH_serving.json`` (the serving-trajectory artifact tracked across
PRs).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from bench_common import describe_workload, finish, workload_parser
from repro.core import FLATIndex
from repro.data.microcircuit import build_microcircuit
from repro.query import (
    MODE_PROCESS,
    MODE_THREAD,
    BenchmarkSpec,
    QueryService,
    SCALED_SN_FRACTION,
    run_queries,
    trajectory_range_queries,
)
from repro.storage import PageStore

#: Default workload: the SN benchmark (Figs. 12/13) at reproduction
#: scale, enough queries for stable throughput numbers.
N_ELEMENTS = 25_000
VOLUME_SIDE = 15.0
QUERY_COUNT = 120
SEED = 7
WORKER_COUNTS = (1, 2, 4, 8)
MODES = (MODE_THREAD, MODE_PROCESS)
#: Queries per joint-crawl task in process mode; thread mode serves at
#: batch 1 (the per-query path whose decode counters are pinned).
PROCESS_BATCH = 30
#: Cold throughput a ≥4-process-worker run must reach, as a multiple of
#: the single-worker cold baseline.
SPEEDUP_GATE = 2.5

#: Cold session throughput the prefetch-enabled run must reach on the
#: structure-following workload, vs the prefetch-free cold baseline.
PREFETCH_SPEEDUP_GATE = 1.25
#: Minimum fraction of the correlated session's logical demand reads
#: the prefetcher must absorb.
PREFETCH_HIT_RATE_GATE = 0.25
#: Allowed throughput loss on the *uncorrelated* workload with
#: prefetching enabled (the model must gate itself off there).
UNCORRELATED_TOLERANCE = 0.02
#: Timed session runs per configuration; the best one is compared
#: (sub-second single-stream runs are noisy).
PREFETCH_REPEATS = 3


def _serve(index, queries, workers: int, cold: bool, mode: str,
           batch: int) -> dict:
    with QueryService(
        index,
        workers=workers,
        clear_cache_per_query=cold,
        mode=mode,
        batch_queries=batch,
    ) as service:
        # Warm the pool up before timing: spawning worker processes and
        # shipping them the engine is a one-off setup cost, not serving
        # throughput (thread pools get the same treatment for parity).
        for future in [service.submit(q) for q in queries[:workers]]:
            future.result()
        report = service.run(queries, "flat-served")
    latency = report.latency_percentiles()
    return {
        "mode": mode,
        "batch_queries": batch,
        "workers": workers,
        "cache": "cold" if cold else "warm",
        "wall_seconds": report.wall_seconds,
        "throughput_qps": report.throughput_qps,
        "latency_ms": {k: v * 1000.0 for k, v in latency.items()},
        "total_page_reads": report.total_page_reads,
        "cache_hits": report.cache_hits,
        "workers_used": report.workers_used,
        "result_elements": report.result_elements,
        "per_query_results": report.per_query_results,
    }


def _annotate_efficiency(runs: list) -> None:
    """Scaling efficiency = qps / (workers × same-config 1-worker qps)."""
    baselines = {
        (r["mode"], r["cache"], r["batch_queries"]): r["throughput_qps"]
        for r in runs
        if r["workers"] == 1
    }
    for r in runs:
        base = baselines.get((r["mode"], r["cache"], r["batch_queries"]))
        if base and base > 0:
            r["scaling_efficiency"] = r["throughput_qps"] / (r["workers"] * base)


def run_serving_bench(
    n_elements: int = N_ELEMENTS,
    volume_side: float = VOLUME_SIDE,
    query_count: int = QUERY_COUNT,
    seed: int = SEED,
    worker_counts=WORKER_COUNTS,
    snapshot_dir: Path | None = None,
    modes=MODES,
    process_batch: int = PROCESS_BATCH,
) -> dict:
    """Build, snapshot, restore and serve; return the full comparison."""
    circuit = build_microcircuit(n_elements, side=volume_side, seed=seed)
    store = PageStore()
    flat = FLATIndex.build(store, circuit.mbrs(), space_mbr=circuit.space_mbr)
    spec = BenchmarkSpec("SN", SCALED_SN_FRACTION, query_count)
    queries = spec.queries(circuit.space_mbr, seed=seed + 202)

    built = run_queries(flat, store, queries, "flat-built")

    own_tmp = None
    if snapshot_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="flat-snapshot-")
        snapshot_dir = Path(own_tmp.name)
    try:
        flat.snapshot(snapshot_dir)
        restored = FLATIndex.restore(snapshot_dir)
        try:
            restored_run = run_queries(
                restored, restored.store, queries, "flat-restored"
            )
            runs = []
            for mode in modes:
                batch = process_batch if mode == MODE_PROCESS else 1
                for workers in worker_counts:
                    runs.append(
                        _serve(restored, queries, workers, True, mode, batch)
                    )
                    runs.append(
                        _serve(restored, queries, workers, False, mode, batch)
                    )
        finally:
            restored.store.close()
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()

    _annotate_efficiency(runs)
    cold_runs = [r for r in runs if r["cache"] == "cold"]
    # The speedup baseline: single-worker cold, preferring the legacy
    # thread/batch=1 configuration when it is part of the sweep.
    cold_single = min(
        cold_runs,
        key=lambda r: (r["workers"], r["mode"] != MODE_THREAD, r["batch_queries"]),
    )
    served_match = all(
        r["per_query_results"] == built.per_query_results for r in runs
    )
    for r in runs:
        del r["per_query_results"]  # bulky; equivalence is summarized in checks
    checks = {
        "restored_identical_results": built.per_query_results
        == restored_run.per_query_results,
        "restored_identical_page_reads": built.reads_by_category
        == restored_run.reads_by_category,
        "served_identical_results": served_match,
        # Every cold run — thread or process, batched or not — must
        # charge exactly the harness's physical page reads.
        "served_cold_reads_match_harness": all(
            r["total_page_reads"] == built.total_page_reads for r in cold_runs
        ),
        "throughput_positive": all(r["throughput_qps"] > 0 for r in runs),
    }
    gated = [
        r
        for r in cold_runs
        if r["mode"] == MODE_PROCESS and r["workers"] >= 4
    ]
    if gated and cold_single["throughput_qps"] > 0:
        best = max(r["throughput_qps"] for r in gated)
        speedup = best / cold_single["throughput_qps"]
        checks["process_cold_speedup_vs_single_worker"] = speedup >= SPEEDUP_GATE
    else:
        speedup = None
    return {
        "benchmark": "serving",
        "workload": {
            "figure": "fig13",
            "benchmark": "SN",
            "n_elements": n_elements,
            "volume_side": volume_side,
            "volume_fraction": SCALED_SN_FRACTION,
            "query_count": query_count,
            "seed": seed,
        },
        "built": {
            "total_page_reads": built.total_page_reads,
            "result_elements": built.result_elements,
        },
        "restored": {
            "total_page_reads": restored_run.total_page_reads,
            "result_elements": restored_run.result_elements,
        },
        "serving": runs,
        "process_cold_speedup": speedup,
        "speedup_gate": SPEEDUP_GATE if speedup is not None else None,
        "checks": checks,
    }


def _serve_pair(index, queries, session_id: str, repeats: int) -> dict:
    """Baseline and prefetch-enabled runs of one session, interleaved.

    Every repetition measures the prefetch-free and the prefetch-enabled
    configuration back to back on fresh services (fresh caches, fresh
    trajectory model) and the fastest run of each is kept.  Interleaving
    matters on a shared machine: slow phases (frequency scaling,
    background load) then hit both configurations alike instead of
    biasing whichever configuration happened to run second.
    """
    best = {False: None, True: None}
    for _ in range(repeats):
        for prefetch in (False, True):
            with QueryService(
                index, workers=1, clear_cache_per_query=True, prefetch=prefetch
            ) as service:
                report = service.run_session(queries, session_id, "flat-session")
            if (
                best[prefetch] is None
                or report.throughput_qps > best[prefetch].throughput_qps
            ):
                best[prefetch] = report
    return {
        "baseline": _session_report_dict(best[False], False),
        "prefetch": _session_report_dict(best[True], True),
    }


def _session_report_dict(report, prefetch: bool) -> dict:
    latency = report.latency_percentiles()
    return {
        "prefetch": prefetch,
        "wall_seconds": report.wall_seconds,
        "throughput_qps": report.throughput_qps,
        "latency_ms": {k: v * 1000.0 for k, v in latency.items()},
        "total_page_reads": report.total_page_reads,
        "reads_by_category": report.reads_by_category,
        "prefetch_hits_by_category": report.prefetch_hits_by_category,
        "total_prefetch_hits": report.total_prefetch_hits,
        "total_prefetch_reads": report.total_prefetch_reads,
        "prefetch_staged": report.prefetch_staged,
        "prefetch_consumed": report.prefetch_consumed,
        "prefetch_wasted": report.prefetch_wasted,
        "prefetch_hit_rate": report.prefetch_hit_rate,
        "result_elements": report.result_elements,
        "per_query_results": report.per_query_results,
    }


def _accounting_identity(baseline: dict, prefetched: dict) -> bool:
    """reads + prefetch_hits per category == the prefetch-free reads."""
    categories = (
        set(baseline["reads_by_category"])
        | set(prefetched["reads_by_category"])
        | set(prefetched["prefetch_hits_by_category"])
    )
    return all(
        prefetched["reads_by_category"].get(c, 0)
        + prefetched["prefetch_hits_by_category"].get(c, 0)
        == baseline["reads_by_category"].get(c, 0)
        for c in categories
    )


def _results_byte_identical(index, queries, session_id: str) -> bool:
    """Prefetch-enabled served ids == the engine's own, element for element."""
    expected = [index.range_query(q) for q in queries]
    with QueryService(
        index, workers=1, clear_cache_per_query=True, prefetch=True
    ) as service:
        return all(
            np.array_equal(service.submit(q, session_id=session_id).result(), want)
            for q, want in zip(queries, expected)
        )


def run_prefetch_bench(
    n_elements: int = N_ELEMENTS,
    volume_side: float = VOLUME_SIDE,
    query_count: int = QUERY_COUNT,
    seed: int = SEED,
    snapshot_dir: Path | None = None,
    repeats: int = PREFETCH_REPEATS,
    speedup_gate: float = PREFETCH_SPEEDUP_GATE,
    uncorrelated_tolerance: float = UNCORRELATED_TOLERANCE,
) -> dict:
    """Trajectory-session serving: prefetch on/off × correlated/uncorrelated.

    The correlated workload walks its boxes along a synthetic neuron
    branch — the access pattern the trajectory model is built for; the
    gate requires the prefetch-enabled cold session to beat the
    prefetch-free cold baseline by :data:`PREFETCH_SPEEDUP_GATE`.  The
    uncorrelated workload is the ordinary random-SN benchmark — there
    the model must gate itself off, and throughput must stay within
    :data:`UNCORRELATED_TOLERANCE` of the baseline.  Both ways, results
    stay byte-identical and ``demand reads + prefetch hits`` equals the
    prefetch-free demand reads per page category.
    """
    circuit = build_microcircuit(n_elements, side=volume_side, seed=seed)
    store = PageStore()
    flat = FLATIndex.build(store, circuit.mbrs(), space_mbr=circuit.space_mbr)
    correlated = trajectory_range_queries(
        circuit.space_mbr, SCALED_SN_FRACTION, query_count, seed=seed + 303
    )
    uncorrelated = BenchmarkSpec("SN", SCALED_SN_FRACTION, query_count).queries(
        circuit.space_mbr, seed=seed + 202
    )

    own_tmp = None
    if snapshot_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="flat-snapshot-")
        snapshot_dir = Path(own_tmp.name)
    try:
        flat.snapshot(snapshot_dir)
        restored = FLATIndex.restore(snapshot_dir)
        try:
            runs = {
                "correlated": _serve_pair(restored, correlated, "corr", repeats),
                "uncorrelated": _serve_pair(
                    restored, uncorrelated, "rand", repeats
                ),
            }
            byte_identical = _results_byte_identical(
                restored, correlated, "verify"
            )
        finally:
            restored.store.close()
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()

    corr, rand = runs["correlated"], runs["uncorrelated"]
    speedup = (
        corr["prefetch"]["throughput_qps"] / corr["baseline"]["throughput_qps"]
    )
    rand_ratio = (
        rand["prefetch"]["throughput_qps"] / rand["baseline"]["throughput_qps"]
    )
    checks = {
        "correlated_identical_results": (
            byte_identical
            and corr["prefetch"]["per_query_results"]
            == corr["baseline"]["per_query_results"]
        ),
        "uncorrelated_identical_results": (
            rand["prefetch"]["per_query_results"]
            == rand["baseline"]["per_query_results"]
        ),
        "correlated_read_accounting_identity": _accounting_identity(
            corr["baseline"], corr["prefetch"]
        ),
        "uncorrelated_read_accounting_identity": _accounting_identity(
            rand["baseline"], rand["prefetch"]
        ),
        "prefetch_cold_speedup": speedup >= speedup_gate,
        "prefetch_hit_rate": (
            corr["prefetch"]["prefetch_hit_rate"] >= PREFETCH_HIT_RATE_GATE
        ),
        "uncorrelated_no_regression": (
            rand_ratio >= 1.0 - uncorrelated_tolerance
        ),
    }
    for section in runs.values():
        for run in section.values():
            del run["per_query_results"]  # bulky; summarized in checks
    return {
        "benchmark": "prefetch",
        "workload": {
            "benchmark": "SN-trajectory",
            "n_elements": n_elements,
            "volume_side": volume_side,
            "volume_fraction": SCALED_SN_FRACTION,
            "query_count": query_count,
            "seed": seed,
            "repeats": repeats,
        },
        "sessions": runs,
        "prefetch_cold_speedup": speedup,
        "speedup_gate": speedup_gate,
        "uncorrelated_qps_ratio": rand_ratio,
        "uncorrelated_tolerance": uncorrelated_tolerance,
        "hit_rate_gate": PREFETCH_HIT_RATE_GATE,
        "checks": checks,
    }


def main(argv=None) -> int:
    parser = workload_parser(
        __doc__.splitlines()[0],
        elements=N_ELEMENTS,
        side=VOLUME_SIDE,
        queries=QUERY_COUNT,
        seed=SEED,
        out="BENCH_serving.json",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=list(WORKER_COUNTS),
        help="worker counts to sweep",
    )
    parser.add_argument(
        "--modes", nargs="+", choices=[MODE_THREAD, MODE_PROCESS],
        default=list(MODES), help="execution modes to sweep",
    )
    parser.add_argument(
        "--batch", type=int, default=PROCESS_BATCH,
        help="queries per joint-crawl task in process mode",
    )
    parser.add_argument(
        "--snapshot-dir", type=Path, default=None,
        help="where to write the snapshot (default: a temporary directory)",
    )
    parser.add_argument(
        "--prefetch", action="store_true",
        help="run the trajectory-prefetch session benchmark instead of "
        "the mode/worker sweep (artifact: BENCH_prefetch.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=PREFETCH_REPEATS,
        help="timed session runs per configuration (--prefetch only)",
    )
    parser.add_argument(
        "--speedup-gate", type=float, default=PREFETCH_SPEEDUP_GATE,
        help="correlated cold-speedup gate for --prefetch; 0 disables "
        "(CI runners measure scheduling noise, not the prefetcher)",
    )
    parser.add_argument(
        "--uncorrelated-tolerance", type=float,
        default=UNCORRELATED_TOLERANCE,
        help="allowed uncorrelated q/s loss for --prefetch; 1 disables",
    )
    args = parser.parse_args(argv)
    if args.prefetch:
        if args.out == Path("BENCH_serving.json"):
            args.out = Path("BENCH_prefetch.json")
        report = run_prefetch_bench(
            args.elements,
            args.side,
            args.queries,
            args.seed,
            args.snapshot_dir,
            args.repeats,
            args.speedup_gate,
            args.uncorrelated_tolerance,
        )
        print(describe_workload(report))
        for name, section in report["sessions"].items():
            for label, run in section.items():
                p50 = run["latency_ms"].get("p50", float("nan"))
                p95 = run["latency_ms"].get("p95", float("nan"))
                print(
                    f"  {name:12s} {label:8s}: {run['throughput_qps']:8.1f} q/s "
                    f"p50={p50:6.2f}ms p95={p95:6.2f}ms "
                    f"({run['total_page_reads']} reads, "
                    f"{run['total_prefetch_hits']} prefetch hits, "
                    f"hit rate {run['prefetch_hit_rate']:.2f})"
                )
        print(
            f"prefetch cold speedup: {report['prefetch_cold_speedup']:.2f}x "
            f"(gate {report['speedup_gate']}x); uncorrelated qps ratio "
            f"{report['uncorrelated_qps_ratio']:.3f}"
        )
        return finish(report, args.out)
    report = run_serving_bench(
        args.elements,
        args.side,
        args.queries,
        args.seed,
        tuple(args.workers),
        args.snapshot_dir,
        tuple(args.modes),
        args.batch,
    )

    print(describe_workload(report))
    for run in report["serving"]:
        p50 = run["latency_ms"].get("p50", float("nan"))
        eff = run.get("scaling_efficiency")
        eff_text = f" eff={eff:4.2f}" if eff is not None else ""
        print(f"  {run['mode']:7s} b={run['batch_queries']:<3d} "
              f"workers={run['workers']} {run['cache']:4s}: "
              f"{run['throughput_qps']:8.1f} q/s p50={p50:6.1f}ms{eff_text} "
              f"({run['total_page_reads']} page reads, "
              f"{run['cache_hits']} cache hits)")
    if report["process_cold_speedup"] is not None:
        print(f"process cold speedup vs single worker: "
              f"{report['process_cold_speedup']:.2f}x (gate {SPEEDUP_GATE}x)")
    return finish(report, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
