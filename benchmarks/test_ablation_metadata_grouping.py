"""Ablation: STR grouping of metadata records vs raw partition order.

DESIGN.md calls out the seed-leaf record layout as a load-bearing design
choice: the paper requires that "spatially close records are stored on
the same leaf page".  This bench quantifies it — packing records in raw
partition order produces slab-shaped metadata pages and many more
metadata-page reads per crawl than STR (cubic) grouping.
"""

from repro.core import FLATIndex
from repro.data import build_microcircuit
from repro.query import run_queries, sn_benchmark
from repro.storage import CATEGORY_METADATA, PageStore


def _metadata_reads(spatial: bool, circuit, queries) -> int:
    store = PageStore()
    index = FLATIndex.build(
        store,
        circuit.mbrs(),
        space_mbr=circuit.space_mbr,
        spatial_metadata_grouping=spatial,
    )
    run = run_queries(index, store, queries, "flat")
    return run.reads_by_category.get(CATEGORY_METADATA, 0), run


def test_spatial_grouping_reduces_metadata_reads(benchmark):
    circuit = build_microcircuit(20_000, side=18.0, seed=5)
    queries = sn_benchmark(query_count=40).queries(circuit.space_mbr, seed=6)

    def both():
        spatial, run_s = _metadata_reads(True, circuit, queries)
        linear, run_l = _metadata_reads(False, circuit, queries)
        # Identical answers, different I/O.
        assert run_s.per_query_results == run_l.per_query_results
        return spatial, linear

    spatial, linear = benchmark.pedantic(both, iterations=1, rounds=1)
    print(f"\nmetadata page reads: STR-grouped={spatial}, raw-order={linear}")
    assert spatial < linear, "spatial grouping must reduce metadata reads"
