"""Sec. VII-E.2: FLAT memory bookkeeping and I/O-bound share (see
DESIGN.md §4)."""

from repro.experiments import sec7e2_overheads as experiment

from conftest import run_figure


def test_sec7e2_overheads(benchmark, config):
    run_figure(benchmark, experiment.run, config)
