"""Ablation: tree depth (internal fanout) and the FLAT-vs-PR-Tree gap.

DESIGN.md documents depth-matching as the scale knob that restores the
paper's tree geometry at reduced element counts: lowering the internal
fanout deepens every tree (R-Tree internals and FLAT's seed tree alike)
and grows the hierarchy overhead the R-Trees pay per query — which is
exactly where FLAT's advantage comes from in the paper.
"""

from repro.core import FLATIndex
from repro.data import build_microcircuit
from repro.query import run_queries, sn_benchmark
from repro.rtree import bulkload_rtree
from repro.storage import NODE_FANOUT, PageStore


def _sn_reads(fanout: int, circuit, queries) -> dict:
    mbrs = circuit.mbrs()
    reads = {}
    for name in ("flat", "prtree"):
        store = PageStore()
        if name == "flat":
            index = FLATIndex.build(
                store, mbrs, space_mbr=circuit.space_mbr, seed_fanout=fanout
            )
        else:
            index = bulkload_rtree(store, mbrs, name, fanout=fanout)
        reads[name] = run_queries(index, store, queries, name).total_page_reads
    return reads


def test_depth_matching_widens_flat_advantage(benchmark):
    circuit = build_microcircuit(25_000, side=21.0, seed=9)
    queries = sn_benchmark(query_count=40).queries(circuit.space_mbr, seed=10)

    def both():
        shallow = _sn_reads(NODE_FANOUT, circuit, queries)
        deep = _sn_reads(9, circuit, queries)
        return shallow, deep

    shallow, deep = benchmark.pedantic(both, iterations=1, rounds=1)
    shallow_factor = shallow["prtree"] / shallow["flat"]
    deep_factor = deep["prtree"] / deep["flat"]
    print(
        f"\nSN reads prtree/flat: fanout {NODE_FANOUT} -> {shallow_factor:.2f}x, "
        f"fanout 9 -> {deep_factor:.2f}x"
    )
    assert shallow_factor > 1.0, "flat should beat the prtree even shallow"
    assert deep_factor > shallow_factor, "depth-matching should widen the gap"
