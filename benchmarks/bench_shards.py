"""Micro-benchmark: sharded FLAT vs monolithic — range and kNN scaling.

Builds the monolithic FLAT index and :class:`ShardedFLATIndex` at
several shard counts over the same microcircuit density step, then
measures two workloads per configuration:

* **range** — the SN benchmark (Figs. 12/13) through the planner-aware
  cold-cache harness, so shard pruning shows up next to the
  per-category page reads it saves;
* **kNN** — random query points through the expanding-radius crawl
  (monolithic) and the MINDIST-ordered shard walk (sharded), pinned to
  a brute-force k-nearest baseline.

On top of the single-threaded accounting, each shard count is served
through :class:`QueryService` at increasing worker counts — sharded
range queries execute scatter–gather (one pool task per touched
shard) — reporting throughput vs shard count and worker count.

Run ``python benchmarks/bench_shards.py`` to print a summary and emit
``BENCH_shards.json`` (the scale-out trajectory artifact tracked
across PRs).
"""

from __future__ import annotations

import numpy as np

from bench_common import describe_workload, finish, workload_parser
from repro.core import FLATIndex, ShardedFLATIndex
from repro.data.microcircuit import build_microcircuit
from repro.geometry import mbr_distance_to_point
from repro.query import (
    BenchmarkSpec,
    QueryService,
    SCALED_SN_FRACTION,
    random_points,
    run_knn_queries,
    run_queries,
)
from repro.storage import PageStore

#: Default workload: the SN benchmark at reproduction scale plus a kNN
#: probe batch, swept over shard and worker counts.
N_ELEMENTS = 20_000
VOLUME_SIDE = 15.0
QUERY_COUNT = 60
KNN_QUERY_COUNT = 30
KNN_K = 10
SEED = 7
SHARD_COUNTS = (1, 2, 4, 8)
WORKER_COUNTS = (1, 2, 4)


def _run_stats(run) -> dict:
    stats = {
        "total_page_reads": run.total_page_reads,
        "reads_by_category": dict(run.reads_by_category),
        "result_elements": run.result_elements,
        "cpu_seconds": run.cpu_seconds,
    }
    if run.per_query_shards:
        stats["mean_shards_touched"] = run.mean_shards_touched
    return stats


def _serve(index, queries, knn_points, k, workers: int) -> dict:
    with QueryService(index, workers=workers) as service:
        range_report = service.run(queries, "range")
        knn_report = service.run_knn(knn_points, k, "knn")
    return {
        "workers": workers,
        "range_qps": range_report.throughput_qps,
        "range_page_reads": range_report.total_page_reads,
        "shard_tasks": range_report.shard_tasks,
        "shards_pruned": range_report.shards_pruned,
        "knn_qps": knn_report.throughput_qps,
        "knn_page_reads": knn_report.total_page_reads,
        "range_per_query_results": range_report.per_query_results,
    }


def run_shard_bench(
    n_elements: int = N_ELEMENTS,
    volume_side: float = VOLUME_SIDE,
    query_count: int = QUERY_COUNT,
    seed: int = SEED,
    shard_counts=SHARD_COUNTS,
    worker_counts=WORKER_COUNTS,
    knn_query_count: int = KNN_QUERY_COUNT,
    knn_k: int = KNN_K,
) -> dict:
    """Build monolithic + sharded indexes; measure and cross-check both."""
    circuit = build_microcircuit(n_elements, side=volume_side, seed=seed)
    mbrs = circuit.mbrs()
    store = PageStore()
    flat = FLATIndex.build(store, mbrs, space_mbr=circuit.space_mbr)
    spec = BenchmarkSpec("SN", SCALED_SN_FRACTION, query_count)
    queries = spec.queries(circuit.space_mbr, seed=seed + 202)
    knn_points = random_points(circuit.space_mbr, knn_query_count, seed=seed + 404)

    mono_range = run_queries(flat, store, queries, "flat-monolithic")
    mono_knn = run_knn_queries(flat, store, knn_points, knn_k, "flat-monolithic")

    # Brute-force kNN baseline: k smallest (distance, id) per point.
    brute = []
    for point in knn_points:
        dists = mbr_distance_to_point(mbrs, point)
        brute.append(np.lexsort((np.arange(len(mbrs)), dists))[:knn_k])

    knn_matches_brute = all(
        np.array_equal(flat.knn_query(point, knn_k), expected)
        for point, expected in zip(knn_points, brute)
    )

    shard_runs = []
    sharded_range_match = True
    sharded_knn_match = True
    for target in shard_counts:
        sharded = ShardedFLATIndex.build(
            mbrs, target, space_mbr=circuit.space_mbr
        )
        range_run = run_queries(
            sharded, sharded.store, queries, f"flat-{target}-shards"
        )
        knn_run = run_knn_queries(
            sharded, sharded.store, knn_points, knn_k, f"flat-{target}-shards"
        )
        # Element-id-level pin, not just result counts.
        sharded_range_match &= all(
            np.array_equal(sharded.range_query(query), flat.range_query(query))
            for query in queries
        )
        sharded_knn_match &= all(
            np.array_equal(sharded.knn_query(point, knn_k), expected)
            for point, expected in zip(knn_points, brute)
        )
        serving = [
            _serve(sharded, queries, knn_points, knn_k, workers)
            for workers in worker_counts
        ]
        sharded_range_match &= all(
            run["range_per_query_results"] == mono_range.per_query_results
            for run in serving
        )
        for run in serving:
            del run["range_per_query_results"]  # bulky; summarized in checks
        shard_runs.append(
            {
                "target_shards": target,
                "actual_shards": sharded.shard_count,
                "shard_elements": sharded.shard_element_counts(),
                "range": _run_stats(range_run),
                "knn": _run_stats(knn_run),
                "serving": serving,
            }
        )

    return {
        "benchmark": "shards",
        "workload": {
            "figure": "fig13",
            "benchmark": "SN",
            "n_elements": n_elements,
            "volume_side": volume_side,
            "volume_fraction": SCALED_SN_FRACTION,
            "query_count": query_count,
            "knn_query_count": knn_query_count,
            "knn_k": knn_k,
            "seed": seed,
        },
        "monolithic": {"range": _run_stats(mono_range), "knn": _run_stats(mono_knn)},
        "shard_runs": shard_runs,
        "checks": {
            "sharded_results_match_monolithic": sharded_range_match,
            "knn_matches_brute_force": bool(knn_matches_brute),
            "sharded_knn_matches_brute_force": bool(sharded_knn_match),
            "throughput_positive": all(
                run["range_qps"] > 0 and run["knn_qps"] > 0
                for entry in shard_runs
                for run in entry["serving"]
            ),
        },
    }


def main(argv=None) -> int:
    parser = workload_parser(
        __doc__.splitlines()[0],
        elements=N_ELEMENTS,
        side=VOLUME_SIDE,
        queries=QUERY_COUNT,
        seed=SEED,
        out="BENCH_shards.json",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=list(SHARD_COUNTS),
        help="shard counts to sweep",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=list(WORKER_COUNTS),
        help="worker counts to sweep",
    )
    parser.add_argument("--knn-queries", type=int, default=KNN_QUERY_COUNT)
    parser.add_argument("--knn-k", type=int, default=KNN_K)
    args = parser.parse_args(argv)
    report = run_shard_bench(
        args.elements,
        args.side,
        args.queries,
        args.seed,
        tuple(args.shards),
        tuple(args.workers),
        args.knn_queries,
        args.knn_k,
    )

    print(describe_workload(report))
    mono = report["monolithic"]
    print(f"monolithic: range reads={mono['range']['total_page_reads']} "
          f"knn reads={mono['knn']['total_page_reads']}")
    for entry in report["shard_runs"]:
        rng_stats, knn_stats = entry["range"], entry["knn"]
        print(f"  shards={entry['actual_shards']}: "
              f"range reads={rng_stats['total_page_reads']} "
              f"(touched {rng_stats.get('mean_shards_touched', 1):.2f}), "
              f"knn reads={knn_stats['total_page_reads']}")
        for run in entry["serving"]:
            print(f"    workers={run['workers']}: "
                  f"range {run['range_qps']:8.1f} q/s "
                  f"({run['shard_tasks']} tasks, {run['shards_pruned']} pruned), "
                  f"knn {run['knn_qps']:8.1f} q/s")
    return finish(report, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
