"""Shared helpers for the figure-reproduction benchmark suite.

Every ``benchmarks/test_figXX_*.py`` regenerates one paper figure/table
at the CI-sized configuration, times it with pytest-benchmark, prints
the resulting table and asserts the figure's shape checks — the
"does the paper's qualitative result hold?" criteria from DESIGN.md §4.

The density sweep is shared (memoized) across benches, so the suite
costs one sweep plus per-figure formatting.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import SMALL_CONFIG


@pytest.fixture(scope="session")
def config():
    """The CI-sized experiment configuration used by every bench."""
    return SMALL_CONFIG


def run_figure(benchmark, run_fn, config):
    """Benchmark one figure's regeneration and assert its shape checks."""
    result = benchmark.pedantic(run_fn, args=(config,), iterations=1, rounds=1)
    print()
    print(result.table())
    failed = [name for name, ok in result.checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"
    return result
