"""Micro-benchmark: scalar vs frontier-batched FLAT crawl (Fig. 13 workload).

Builds FLAT over one microcircuit density step and runs the SN
benchmark (the workload behind Figs. 12/13) twice through the standard
cold-cache harness: once with the record-at-a-time reference crawl
(``FLATIndex.range_query_scalar``) and once with the frontier-batched
engine (``FLATIndex.range_query``).  Both crawls must read the same
pages and return the same elements; the batched engine wins on CPU by
decoding each metadata leaf once per query instead of once per record.

Run ``python benchmarks/bench_crawl.py`` to print a summary and emit
``BENCH_crawl.json`` (the perf-trajectory artifact tracked across PRs).
"""

from __future__ import annotations

from bench_common import describe_workload, finish, workload_parser
from repro.core import FLATIndex
from repro.data.microcircuit import build_microcircuit
from repro.query import BenchmarkSpec, CallableEngine, SCALED_SN_FRACTION, run_queries
from repro.storage import DECODE_ELEMENT, DECODE_METADATA, PageStore

#: Default workload: one dense microcircuit step in the SMALL_CONFIG
#: volume (Fig. 13's benchmark at reproduction scale), enough queries
#: for stable counters.
N_ELEMENTS = 25_000
VOLUME_SIDE = 15.0
QUERY_COUNT = 60
SEED = 7


def _run_stats(run) -> dict:
    return {
        "metadata_decodes": run.decodes_in(DECODE_METADATA),
        "element_decodes": run.decodes_in(DECODE_ELEMENT),
        "decode_hits": sum(run.decode_hits_by_kind.values()),
        "total_page_reads": run.total_page_reads,
        "result_elements": run.result_elements,
        "cpu_seconds": run.cpu_seconds,
    }


def run_crawl_bench(
    n_elements: int = N_ELEMENTS,
    volume_side: float = VOLUME_SIDE,
    query_count: int = QUERY_COUNT,
    seed: int = SEED,
) -> dict:
    """Run both crawls on the same index + queries; return the comparison."""
    circuit = build_microcircuit(n_elements, side=volume_side, seed=seed)
    store = PageStore()
    flat = FLATIndex.build(store, circuit.mbrs(), space_mbr=circuit.space_mbr)
    spec = BenchmarkSpec("SN", SCALED_SN_FRACTION, query_count)
    queries = spec.queries(circuit.space_mbr, seed=seed + 202)

    scalar = run_queries(
        CallableEngine(flat.range_query_scalar, flat), store, queries, "flat-scalar"
    )
    batched = run_queries(flat, store, queries, "flat-batched")

    scalar_stats = _run_stats(scalar)
    batched_stats = _run_stats(batched)
    reduction = scalar_stats["metadata_decodes"] / max(
        batched_stats["metadata_decodes"], 1
    )
    cpu_speedup = scalar_stats["cpu_seconds"] / max(
        batched_stats["cpu_seconds"], 1e-12
    )
    return {
        "benchmark": "crawl-engine",
        "workload": {
            "figure": "fig13",
            "benchmark": "SN",
            "n_elements": n_elements,
            "volume_side": volume_side,
            "volume_fraction": SCALED_SN_FRACTION,
            "query_count": query_count,
            "seed": seed,
        },
        "scalar": scalar_stats,
        "batched": batched_stats,
        "metadata_decode_reduction": reduction,
        "cpu_speedup": cpu_speedup,
        "checks": {
            "identical_results": scalar.per_query_results
            == batched.per_query_results,
            "identical_page_reads": scalar.reads_by_category
            == batched.reads_by_category,
            "metadata_decode_reduction_at_least_3x": reduction >= 3.0,
        },
    }


def main(argv=None) -> int:
    parser = workload_parser(
        __doc__.splitlines()[0],
        elements=N_ELEMENTS,
        side=VOLUME_SIDE,
        queries=QUERY_COUNT,
        seed=SEED,
        out="BENCH_crawl.json",
    )
    args = parser.parse_args(argv)
    report = run_crawl_bench(args.elements, args.side, args.queries, args.seed)

    scalar, batched = report["scalar"], report["batched"]
    print(describe_workload(report))
    print(f"metadata decodes: scalar={scalar['metadata_decodes']} "
          f"batched={batched['metadata_decodes']} "
          f"({report['metadata_decode_reduction']:.1f}x reduction)")
    print(f"cpu seconds: scalar={scalar['cpu_seconds']:.3f} "
          f"batched={batched['cpu_seconds']:.3f} "
          f"({report['cpu_speedup']:.2f}x speedup)")
    return finish(report, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
