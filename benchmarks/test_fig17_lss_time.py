"""Fig. 17: LSS execution time (simulated I/O + CPU) (see DESIGN.md §4)."""

from repro.experiments import fig17_lss_time as experiment

from conftest import run_figure


def test_fig17(benchmark, config):
    run_figure(benchmark, experiment.run, config)
