"""Micro-benchmark: compressed page codecs at larger-than-RAM scale.

Builds one microcircuit dataset (millions of elements by default),
exports the same FLAT index under every page codec (``raw`` and
``delta64``), and serves an identical cold range-query workload from
each store with the buffer pool *byte*-constrained below the workload's
raw working set — the serving regime the codecs exist for.  The OS
page cache is dropped (``posix_fadvise``/``madvise DONTNEED``) around
every query so the byte-budgeted pool is the only cache that persists
across queries.

The workload is a **hotspot**: query boxes keep the benchmark's SN
extents but their centers concentrate in a sub-volume (default 5 % of
the space).  The pool budget (default 2.5 % of the raw ``pages.dat``)
is chosen *between* the two working sets: the hotspot's raw pages do
not fit, its delta64 blobs do — so the raw store keeps paying physical
reads for pages the compressed store holds resident.  That is the
larger-than-RAM effect at byte granularity, not a modeling artifact.

What the artifact records, per codec:

* ``pages.dat`` size and the compression ratio vs raw (gated, default
  ``>= 2x``);
* measured cold throughput (q/s) and the physical page reads behind it
  — the same byte budget holds ~3x more delta64 blobs, so the
  compressed store misses less;
* modeled I/O seconds from :class:`~repro.storage.diskmodel.DiskModel`
  with ``page_bytes`` set to the codec's mean physical blob size — the
  paper-grade 10 kRPM SAS estimate of the same read counts.

Exactness always gates the exit code: every query must return
element-id-identical results under every codec, and a sample of
logical pages must compare byte-equal across stores.

Run ``python benchmarks/bench_scale.py`` to print a summary and emit
``BENCH_scale.json``.  CI runs a small-but-larger-than-pool smoke
(``--elements 60000 --ratio-gate 1.5``).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from bench_common import describe_workload, finish, workload_parser
from repro.core import FLATIndex, restore_index, snapshot_index
from repro.query import BenchmarkSpec, SCALED_SN_FRACTION
from repro.storage import BufferPool, DiskModel, PageStore
from repro.storage.filestore import PAGES_FILENAME

N_ELEMENTS = 2_000_000
VOLUME_SIDE = 70.0
QUERY_COUNT = 400
SEED = 7
CODECS = ("raw", "delta64")
POOL_FRACTION = 0.025
HOTSPOT_FRACTION = 0.05
RATIO_GATE = 2.0
SAMPLE_PAGES = 512


def _hotspot_queries(spec, space_mbr, hotspot_fraction, seed) -> np.ndarray:
    """SN-sized query boxes with centers inside a central sub-volume.

    The boxes keep the benchmark's per-query extents (same per-query
    page counts as the uniform workload); only their *centers* are
    drawn from a cube covering ``hotspot_fraction`` of the volume, so
    successive queries revisit the same pages — the reuse a buffer
    pool exists to absorb.
    """
    boxes = spec.queries(space_mbr, seed=seed)
    extents = boxes[:, 3:] - boxes[:, :3]
    lo, hi = space_mbr[:3], space_mbr[3:]
    span = hi - lo
    side = hotspot_fraction ** (1.0 / 3.0)  # volume -> per-axis fraction
    hot_lo = lo + span * (0.5 - side / 2.0)
    hot_hi = lo + span * (0.5 + side / 2.0)
    rng = np.random.default_rng(seed + 1)
    centers = rng.uniform(hot_lo, hot_hi, size=(len(boxes), 3))
    return np.concatenate(
        [centers - extents / 2.0, centers + extents / 2.0], axis=1
    )


def _export(flat, workdir, codec) -> dict:
    """Snapshot *flat* under *codec*; return directory + size accounting."""
    directory = Path(workdir) / codec
    start = time.perf_counter()
    snapshot_index(flat, directory, codec=codec)
    wall = time.perf_counter() - start
    data_bytes = (directory / PAGES_FILENAME).stat().st_size
    return {
        "directory": directory,
        "codec": codec,
        "pages_dat_bytes": int(data_bytes),
        "logical_pages": len(flat.store),
        "mean_blob_bytes": data_bytes / max(1, len(flat.store)),
        "snapshot_seconds": wall,
    }


def _page_sample(n_pages, sample, seed) -> np.ndarray:
    rng = np.random.default_rng(seed)
    count = min(sample, n_pages)
    return rng.choice(n_pages, size=count, replace=False)


def _cold_run(directory, queries, byte_budget, disk: DiskModel,
              mean_blob_bytes: float) -> tuple:
    """Serve *queries* cold through a byte-budgeted pool; return results.

    The buffer pool is the only cache that survives a query: decoded
    pages are dropped per query and the OS cache is dropped around each
    one, so every pool miss is a genuinely cold physical read.
    """
    flat = restore_index(directory, buffer=BufferPool(byte_capacity=byte_budget))
    store = flat.store
    drop = getattr(store.backend, "drop_os_cache", lambda: None)
    try:
        results = []
        drop()
        start = time.perf_counter()
        for query in queries:
            store.decoded.clear()
            results.append(flat.range_query(query))
            drop()
        wall = time.perf_counter() - start
        physical_reads = store.stats.total_reads
        modeled = DiskModel(
            seek_ms=disk.seek_ms,
            rotational_ms=disk.rotational_ms,
            transfer_mb_per_s=disk.transfer_mb_per_s,
            page_bytes=max(1, int(round(mean_blob_bytes))),
        )
        run = {
            "cold_qps": len(queries) / wall if wall > 0 else float("inf"),
            "wall_seconds": wall,
            "physical_reads": int(physical_reads),
            "cache_hits": int(store.stats.cache_hits),
            "modeled_io_seconds": modeled.io_seconds(physical_reads),
            "pool_resident_pages": len(store.buffer),
            "pool_resident_bytes": int(store.buffer.resident_bytes),
        }
        return results, run
    finally:
        store.close()


def run_scale_bench(
    n_elements: int = N_ELEMENTS,
    volume_side: float = VOLUME_SIDE,
    query_count: int = QUERY_COUNT,
    seed: int = SEED,
    codecs=CODECS,
    pool_fraction: float = POOL_FRACTION,
    hotspot_fraction: float = HOTSPOT_FRACTION,
    ratio_gate: float = RATIO_GATE,
    sample_pages: int = SAMPLE_PAGES,
) -> dict:
    """Export one index under every codec and race the cold workloads."""
    from repro.data.microcircuit import build_microcircuit

    build_start = time.perf_counter()
    circuit = build_microcircuit(n_elements, side=volume_side, seed=seed)
    flat = FLATIndex.build(PageStore(), circuit.mbrs(),
                           space_mbr=circuit.space_mbr)
    build_seconds = time.perf_counter() - build_start
    spec = BenchmarkSpec("SN", SCALED_SN_FRACTION, query_count)
    queries = _hotspot_queries(
        spec, circuit.space_mbr, hotspot_fraction, seed + 202
    )
    disk = DiskModel()

    with tempfile.TemporaryDirectory(prefix="flatscale-") as workdir:
        stores = {codec: _export(flat, workdir, codec) for codec in codecs}
        raw_bytes = stores["raw"]["pages_dat_bytes"]
        byte_budget = max(1, int(raw_bytes * pool_fraction))

        # Byte-exact pin: the logical pages are codec-invariant.
        sample = _page_sample(len(flat.store), sample_pages, seed + 303)
        restored = {
            codec: restore_index(info["directory"])
            for codec, info in stores.items()
        }
        try:
            pages_identical = all(
                restored[codec].store.read_silent(int(pid))
                == flat.store.read_silent(int(pid))
                for codec in codecs
                for pid in sample
            )
        finally:
            for index in restored.values():
                index.store.close()

        runs = {}
        results = {}
        for codec, info in stores.items():
            results[codec], runs[codec] = _cold_run(
                info["directory"], queries, byte_budget, disk,
                info["mean_blob_bytes"],
            )

    results_identical = all(
        np.array_equal(results[codec][i], results["raw"][i])
        for codec in codecs
        for i in range(len(queries))
    )
    ratios = {
        codec: raw_bytes / info["pages_dat_bytes"]
        for codec, info in stores.items()
    }
    raw_io = runs["raw"]["modeled_io_seconds"]
    for run in runs.values():
        run["modeled_io_speedup_vs_raw"] = (
            raw_io / run["modeled_io_seconds"]
            if run["modeled_io_seconds"] > 0 else float("inf")
        )
    checks = {
        "results_identical_across_codecs": bool(results_identical),
        "logical_pages_identical_across_codecs": bool(pages_identical),
        "delta64_ratio_meets_gate": bool(ratios["delta64"] >= ratio_gate),
        "delta64_reads_not_worse": (
            runs["delta64"]["physical_reads"] <= runs["raw"]["physical_reads"]
        ),
    }

    return {
        "benchmark": "scale",
        "workload": {
            "figure": "fig13",
            "benchmark": "SN",
            "n_elements": n_elements,
            "volume_side": volume_side,
            "volume_fraction": SCALED_SN_FRACTION,
            "query_count": query_count,
            "seed": seed,
            "build_seconds": build_seconds,
            "pool_fraction": pool_fraction,
            "hotspot_fraction": hotspot_fraction,
            "pool_byte_budget": byte_budget,
            "ratio_gate": ratio_gate,
            "sampled_pages": int(len(sample)),
        },
        "stores": {
            codec: {key: value for key, value in info.items()
                    if key != "directory"}
            for codec, info in stores.items()
        },
        "compression_ratio_vs_raw": ratios,
        "runs": runs,
        "checks": checks,
    }


def main(argv=None) -> int:
    parser = workload_parser(
        __doc__.splitlines()[0],
        elements=N_ELEMENTS,
        side=VOLUME_SIDE,
        queries=QUERY_COUNT,
        seed=SEED,
        out="BENCH_scale.json",
    )
    parser.add_argument(
        "--pool-fraction", type=float, default=POOL_FRACTION,
        help="buffer-pool byte budget as a fraction of the raw pages.dat",
    )
    parser.add_argument(
        "--hotspot", type=float, default=HOTSPOT_FRACTION,
        help="fraction of the volume query centers concentrate in",
    )
    parser.add_argument(
        "--ratio-gate", type=float, default=RATIO_GATE,
        help="minimum raw/delta64 pages.dat ratio gating the exit code",
    )
    parser.add_argument("--sample-pages", type=int, default=SAMPLE_PAGES)
    args = parser.parse_args(argv)
    report = run_scale_bench(
        args.elements,
        args.side,
        args.queries,
        args.seed,
        pool_fraction=args.pool_fraction,
        hotspot_fraction=args.hotspot,
        ratio_gate=args.ratio_gate,
        sample_pages=args.sample_pages,
    )

    print(describe_workload(report))
    raw_bytes = report["stores"]["raw"]["pages_dat_bytes"]
    print(f"pool byte budget: {report['workload']['pool_byte_budget']:,} "
          f"of {raw_bytes:,} raw bytes "
          f"({report['workload']['pool_fraction']:.0%})")
    for codec, info in report["stores"].items():
        run = report["runs"][codec]
        ratio = report["compression_ratio_vs_raw"][codec]
        print(f"  {codec:8s}: pages.dat {info['pages_dat_bytes']:12,} B "
              f"({ratio:4.2f}x), cold {run['cold_qps']:8.2f} q/s, "
              f"{run['physical_reads']:8d} physical reads, "
              f"modeled I/O {run['modeled_io_seconds']:8.2f} s")
    return finish(report, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
