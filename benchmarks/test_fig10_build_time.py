"""Fig. 10: index build time across the density sweep (see DESIGN.md §4)."""

from repro.experiments import fig10_build_time as experiment

from conftest import run_figure


def test_fig10(benchmark, config):
    run_figure(benchmark, experiment.run, config)
