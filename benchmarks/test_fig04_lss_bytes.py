"""Fig. 4: LSS bytes retrieved vs result size on the R-Trees (see DESIGN.md §4)."""

from repro.experiments import fig04_lss_bytes as experiment

from conftest import run_figure


def test_fig04(benchmark, config):
    run_figure(benchmark, experiment.run, config)
